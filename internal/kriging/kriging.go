// Package kriging implements ordinary kriging — the Table II(f) geostatistics
// model the paper trains through Pyinterpolate (hyperparameters
// search_radius: 0.01, max_range: 0.32, number_of_neighbors: 8).
//
// Fitting estimates the empirical semivariogram on distance bins of width
// SearchRadius up to MaxRange, then fits a spherical model (nugget, sill,
// range) by least squares with a grid-plus-refine search over the range.
// Prediction solves the ordinary kriging system over the NumNeighbors
// nearest observations of each query point.
package kriging

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"spatialrepart/internal/mat"
)

// Options configures FitKriging. Zero values take the paper's Table I
// hyperparameters.
type Options struct {
	SearchRadius float64 // variogram bin width (default 0.01)
	MaxRange     float64 // maximum lag distance considered (default 0.32)
	NumNeighbors int     // kriging neighborhood size (default 8)
	// MaxPairs caps the number of point pairs used for the empirical
	// semivariogram (default 2_000_000); larger datasets subsample
	// deterministically by striding.
	MaxPairs int
	// Model selects the theoretical variogram family (default Spherical;
	// Auto picks the best-fitting of spherical/exponential/gaussian).
	Model VariogramKind
}

func (o *Options) defaults() {
	if o.SearchRadius == 0 {
		o.SearchRadius = 0.01
	}
	if o.MaxRange == 0 {
		o.MaxRange = 0.32
	}
	if o.NumNeighbors == 0 {
		o.NumNeighbors = 8
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 2_000_000
	}
}

// VariogramKind selects the theoretical semivariogram family.
type VariogramKind int

const (
	// Spherical reaches its sill exactly at Range (the geostatistics
	// default, and the model Table I's Pyinterpolate settings imply).
	Spherical VariogramKind = iota
	// Exponential approaches the sill asymptotically (practical range ≈ 3a).
	Exponential
	// Gaussian has parabolic near-origin behavior (very smooth fields).
	Gaussian
	// Auto fits all three families and keeps the lowest-SSE one.
	Auto
)

// String implements fmt.Stringer.
func (k VariogramKind) String() string {
	switch k {
	case Spherical:
		return "spherical"
	case Exponential:
		return "exponential"
	case Gaussian:
		return "gaussian"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("VariogramKind(%d)", int(k))
}

// Variogram is a fitted semivariogram model.
type Variogram struct {
	Kind   VariogramKind
	Nugget float64 // γ at h → 0⁺
	Sill   float64 // partial sill (the model plateaus at Nugget + Sill)
	Range  float64 // distance scale (sill reached at Range for spherical)
}

// At evaluates the model at lag h.
func (v Variogram) At(h float64) float64 {
	if h <= 0 {
		return 0
	}
	switch v.Kind {
	case Exponential:
		return v.Nugget + v.Sill*(1-math.Exp(-3*h/v.Range))
	case Gaussian:
		r := h / v.Range
		return v.Nugget + v.Sill*(1-math.Exp(-3*r*r))
	}
	// Spherical.
	if h >= v.Range {
		return v.Nugget + v.Sill
	}
	r := h / v.Range
	return v.Nugget + v.Sill*(1.5*r-0.5*r*r*r)
}

// Kriging is a fitted ordinary kriging interpolator.
type Kriging struct {
	Model Variogram

	lat, lon, y  []float64
	numNeighbors int
}

// FitKriging estimates the semivariogram from the observations.
func FitKriging(lat, lon, y []float64, opts Options) (*Kriging, error) {
	n := len(y)
	if len(lat) != n || len(lon) != n {
		return nil, fmt.Errorf("kriging: input length mismatch (%d,%d,%d)", len(lat), len(lon), n)
	}
	if n < 2 {
		return nil, fmt.Errorf("kriging: need at least 2 observations, got %d", n)
	}
	opts.defaults()

	nBins := int(math.Ceil(opts.MaxRange / opts.SearchRadius))
	if nBins < 1 {
		nBins = 1
	}
	gammaSum := make([]float64, nBins)
	counts := make([]int, nBins)

	// Deterministic pair subsampling: stride over the second index.
	totalPairs := n * (n - 1) / 2
	stride := 1
	if totalPairs > opts.MaxPairs {
		stride = totalPairs/opts.MaxPairs + 1
	}
	pair := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pair++
			if pair%stride != 0 {
				continue
			}
			dlat, dlon := lat[i]-lat[j], lon[i]-lon[j]
			h := math.Sqrt(dlat*dlat + dlon*dlon)
			if h >= opts.MaxRange || h == 0 {
				continue
			}
			bin := int(h / opts.SearchRadius)
			if bin >= nBins {
				bin = nBins - 1
			}
			d := y[i] - y[j]
			gammaSum[bin] += 0.5 * d * d
			counts[bin]++
		}
	}

	// Empirical semivariogram points (bin centers with data).
	var hs, gs []float64
	for b := 0; b < nBins; b++ {
		if counts[b] == 0 {
			continue
		}
		hs = append(hs, (float64(b)+0.5)*opts.SearchRadius)
		gs = append(gs, gammaSum[b]/float64(counts[b]))
	}
	if len(hs) == 0 {
		return nil, fmt.Errorf("kriging: no point pairs within max range %v", opts.MaxRange)
	}

	var model Variogram
	if opts.Model == Auto {
		bestSSE := math.Inf(1)
		for _, kind := range []VariogramKind{Spherical, Exponential, Gaussian} {
			if v, sse := fitModel(kind, hs, gs, opts.MaxRange); sse < bestSSE {
				model, bestSSE = v, sse
			}
		}
	} else {
		model, _ = fitModel(opts.Model, hs, gs, opts.MaxRange)
	}
	return &Kriging{Model: model, lat: lat, lon: lon, y: y, numNeighbors: opts.NumNeighbors}, nil
}

// fitModel least-squares-fits (nugget, sill) for each candidate range of the
// given family and keeps the best, refining around the winner. Returns the
// fitted model and its SSE against the empirical points.
func fitModel(kind VariogramKind, hs, gs []float64, maxRange float64) (Variogram, float64) {
	shape := func(h, a float64) float64 {
		switch kind {
		case Exponential:
			return 1 - math.Exp(-3*h/a)
		case Gaussian:
			r := h / a
			return 1 - math.Exp(-3*r*r)
		}
		if h >= a {
			return 1
		}
		r := h / a
		return 1.5*r - 0.5*r*r*r
	}
	eval := func(a float64) (Variogram, float64) {
		// Linear LS on basis [1, f_a(h)] with nonnegativity clamps.
		var s11, s12, s22, b1, b2 float64
		for i, h := range hs {
			f := shape(h, a)
			s11 += 1
			s12 += f
			s22 += f * f
			b1 += gs[i]
			b2 += gs[i] * f
		}
		det := s11*s22 - s12*s12
		var c0, c float64
		if math.Abs(det) > 1e-12 {
			c0 = (b1*s22 - b2*s12) / det
			c = (s11*b2 - s12*b1) / det
		} else {
			c0, c = 0, b1/s11
		}
		if c0 < 0 {
			c0 = 0
			if s22 > 0 {
				c = b2 / s22
			}
		}
		if c < 0 {
			c = 0
			c0 = b1 / s11
			if c0 < 0 {
				c0 = 0
			}
		}
		v := Variogram{Kind: kind, Nugget: c0, Sill: c, Range: a}
		var sse float64
		for i, h := range hs {
			d := gs[i] - v.At(h)
			sse += d * d
		}
		return v, sse
	}

	best, bestSSE := eval(maxRange)
	for i := 1; i <= 20; i++ {
		a := maxRange * float64(i) / 20
		if v, sse := eval(a); sse < bestSSE {
			best, bestSSE = v, sse
		}
	}
	// Golden refinement around the winner.
	lo := best.Range - maxRange/20
	hi := best.Range + maxRange/20
	if lo <= 0 {
		lo = maxRange / 100
	}
	for it := 0; it < 25; it++ {
		m1 := lo + (hi-lo)*0.382
		m2 := lo + (hi-lo)*0.618
		_, s1 := eval(m1)
		_, s2 := eval(m2)
		if s1 < s2 {
			hi = m2
		} else {
			lo = m1
		}
	}
	if v, sse := eval((lo + hi) / 2); sse < bestSSE {
		best, bestSSE = v, sse
	}
	return best, bestSSE
}

type cand struct {
	idx int
	d   float64
}

// predictOne interpolates a single location using the caller-owned candidate
// buffer (len == number of observations).
func (k *Kriging) predictOne(lat, lon float64, cands []cand) float64 {
	n := len(k.y)
	nn := k.numNeighbors
	if nn > n {
		nn = n
	}
	exact := -1
	for i := 0; i < n; i++ {
		dlat, dlon := k.lat[i]-lat, k.lon[i]-lon
		d := math.Sqrt(dlat*dlat + dlon*dlon)
		cands[i] = cand{i, d}
		if d == 0 {
			exact = i
		}
	}
	if exact >= 0 {
		return k.y[exact]
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	nb := cands[:nn]

	// Ordinary kriging system with a Lagrange multiplier row.
	m := nn + 1
	a := mat.NewDense(m, m)
	rhs := make([]float64, m)
	for i := 0; i < nn; i++ {
		for j := i + 1; j < nn; j++ {
			dlat := k.lat[nb[i].idx] - k.lat[nb[j].idx]
			dlon := k.lon[nb[i].idx] - k.lon[nb[j].idx]
			g := k.Model.At(math.Sqrt(dlat*dlat + dlon*dlon))
			a.Set(i, j, g)
			a.Set(j, i, g)
		}
		a.Set(i, nn, 1)
		a.Set(nn, i, 1)
		rhs[i] = k.Model.At(nb[i].d)
	}
	// Small jitter keeps the system solvable when the variogram is flat.
	for i := 0; i < nn; i++ {
		a.Set(i, i, a.At(i, i)+1e-10)
	}
	rhs[nn] = 1
	wts, err := mat.SolveLU(a, rhs)
	if err != nil {
		// Flat variogram or collinear points: fall back to inverse distance
		// weighting over the same neighborhood.
		var num, den float64
		for i := 0; i < nn; i++ {
			w := 1 / nb[i].d
			num += w * k.y[nb[i].idx]
			den += w
		}
		return num / den
	}
	var v float64
	for i := 0; i < nn; i++ {
		v += wts[i] * k.y[nb[i].idx]
	}
	return v
}

// Predict interpolates the variable at each query location by solving the
// ordinary kriging system over the nearest NumNeighbors observations.
// Queries are independent and run on all available cores.
func (k *Kriging) Predict(lat, lon []float64) ([]float64, error) {
	if len(lat) != len(lon) {
		return nil, fmt.Errorf("kriging: query length mismatch %d vs %d", len(lat), len(lon))
	}
	out := make([]float64, len(lat))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(lat) {
		workers = len(lat)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cands := make([]cand, len(k.y))
			for q := range next {
				out[q] = k.predictOne(lat[q], lon[q], cands)
			}
		}()
	}
	for q := range lat {
		next <- q
	}
	close(next)
	wg.Wait()
	return out, nil
}
