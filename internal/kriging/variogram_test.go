package kriging

import (
	"math"
	"testing"
)

func TestVariogramKindString(t *testing.T) {
	cases := map[VariogramKind]string{
		Spherical: "spherical", Exponential: "exponential", Gaussian: "gaussian", Auto: "auto",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if VariogramKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

func TestVariogramFamilies(t *testing.T) {
	for _, kind := range []VariogramKind{Spherical, Exponential, Gaussian} {
		v := Variogram{Kind: kind, Nugget: 0.1, Sill: 0.9, Range: 0.5}
		if v.At(0) != 0 {
			t.Errorf("%v: At(0) = %v, want 0", kind, v.At(0))
		}
		// Monotone non-decreasing.
		prev := 0.0
		for h := 0.001; h < 2; h += 0.01 {
			g := v.At(h)
			if g < prev-1e-12 {
				t.Fatalf("%v: decreased at h=%v", kind, h)
			}
			prev = g
		}
		// Approaches (or reaches) nugget+sill.
		if got := v.At(5); math.Abs(got-1.0) > 0.01 {
			t.Errorf("%v: At(far) = %v, want ≈ 1", kind, got)
		}
	}
}

func TestVariogramNearOriginBehavior(t *testing.T) {
	// Gaussian is the smoothest near 0: γ(h) = O(h²); exponential and
	// spherical rise linearly. At a small lag the gaussian value must be the
	// smallest.
	h := 0.02
	sph := Variogram{Kind: Spherical, Sill: 1, Range: 0.5}.At(h)
	exp := Variogram{Kind: Exponential, Sill: 1, Range: 0.5}.At(h)
	gau := Variogram{Kind: Gaussian, Sill: 1, Range: 0.5}.At(h)
	if gau >= sph || gau >= exp {
		t.Errorf("gaussian %v should be below spherical %v and exponential %v near 0", gau, sph, exp)
	}
}

func TestFitModelRecoversFamily(t *testing.T) {
	// Synthesize empirical points from a known model; Auto must fit tightly
	// and beat (or match) every single-family fit.
	truth := Variogram{Kind: Exponential, Nugget: 0.05, Sill: 1.2, Range: 0.4}
	var hs, gs []float64
	for h := 0.01; h < 1.0; h += 0.02 {
		hs = append(hs, h)
		gs = append(gs, truth.At(h))
	}
	expFit, expSSE := fitModel(Exponential, hs, gs, 1.0)
	if expSSE > 1e-3 {
		t.Errorf("exponential self-fit SSE = %v, want tiny", expSSE)
	}
	if math.Abs(expFit.Sill-truth.Sill) > 0.2 {
		t.Errorf("sill = %v, want ≈ %v", expFit.Sill, truth.Sill)
	}
	_, sphSSE := fitModel(Spherical, hs, gs, 1.0)
	if sphSSE < expSSE {
		t.Errorf("spherical fit (%v) should not beat the generating family (%v)", sphSSE, expSSE)
	}
}

func TestAutoSelectsBestFamily(t *testing.T) {
	lat, lon, y := synthSurface(21, 300)
	k, err := FitKriging(lat, lon, y, Options{MaxRange: 1.2, Model: Auto})
	if err != nil {
		t.Fatal(err)
	}
	// Auto must pick one of the three concrete families.
	if k.Model.Kind != Spherical && k.Model.Kind != Exponential && k.Model.Kind != Gaussian {
		t.Errorf("Auto selected %v", k.Model.Kind)
	}
	// And predictions stay sound.
	pred, err := k.Predict(lat[:10], lon[:10])
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pred {
		if p != y[i] {
			t.Errorf("exactness violated at %d", i)
		}
	}
}

func TestDefaultModelIsSpherical(t *testing.T) {
	lat, lon, y := synthSurface(22, 100)
	k, err := FitKriging(lat, lon, y, Options{MaxRange: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if k.Model.Kind != Spherical {
		t.Errorf("default family = %v, want spherical", k.Model.Kind)
	}
}
