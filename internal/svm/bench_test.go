package svm

import (
	"math"
	"math/rand"
	"testing"
)

func benchData(n int) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x[i] = []float64{a, b}
		y[i] = math.Sin(2*a) + 0.5*b
	}
	return x, y
}

func BenchmarkFitSVR500(b *testing.B) {
	x, y := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitSVR(x, y, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitSVRUncached500(b *testing.B) {
	x, y := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitSVR(x, y, Options{MaxKernelCache: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVRPredict(b *testing.B) {
	x, y := benchData(500)
	m, err := FitSVR(x, y, Options{})
	if err != nil {
		b.Fatal(err)
	}
	q, _ := benchData(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(q); err != nil {
			b.Fatal(err)
		}
	}
}
