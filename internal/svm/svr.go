// Package svm implements ε-support-vector regression with an RBF kernel —
// the Table II(d) model the paper trains through scikit-learn (kernel: rbf,
// C: 15, gamma: 0.5, epsilon: 0.01).
//
// The trainer solves the ε-SVR dual in the β = α − α* parameterization with
// the bias absorbed into an augmented kernel K' = K + 1 (a standard
// reformulation that removes the equality constraint Σβ = 0):
//
//	min_β  ½ βᵀK'β − yᵀβ + ε‖β‖₁   s.t. β_i ∈ [−C, C]
//
// which cyclic coordinate descent with exact per-coordinate soft-threshold
// updates solves to convergence. Each update has a closed form, the
// objective decreases monotonically, and the fitted function is
// f(x) = Σ β_i (K(x_i, x) + 1).
package svm

import (
	"fmt"
	"math"
)

// SVR is a fitted ε-support-vector regression model.
type SVR struct {
	C       float64
	Gamma   float64
	Epsilon float64

	supportX [][]float64 // support vectors (β ≠ 0)
	beta     []float64   // their coefficients
}

// Options configures FitSVR. Zero values take the paper's hyperparameters.
type Options struct {
	C       float64 // box constraint (default 15)
	Gamma   float64 // RBF width (default 0.5)
	Epsilon float64 // insensitive-tube half-width (default 0.01)
	// MaxPasses caps full coordinate sweeps (default 200).
	MaxPasses int
	// Tol stops training when no coordinate moved more than Tol in a sweep
	// (default 1e-4).
	Tol float64
	// MaxKernelCache caps the training-set size for which the full kernel
	// matrix is materialized (default 3000). Larger sets compute kernel rows
	// on the fly (slower but bounded memory).
	MaxKernelCache int
}

func (o *Options) defaults() {
	if o.C == 0 {
		o.C = 15
	}
	if o.Gamma == 0 {
		o.Gamma = 0.5
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.01
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 200
	}
	if o.Tol == 0 {
		o.Tol = 1e-4
	}
	if o.MaxKernelCache == 0 {
		o.MaxKernelCache = 3000
	}
}

// rbf evaluates exp(−γ‖a−b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	var d2 float64
	for i, v := range a {
		d := v - b[i]
		d2 += d * d
	}
	return math.Exp(-gamma * d2)
}

// FitSVR trains an ε-SVR on x/y. Features should be on comparable scales
// (the experiment harness standardizes them), matching scikit-learn usage.
func FitSVR(x [][]float64, y []float64, opts Options) (*SVR, error) {
	n := len(y)
	if len(x) != n {
		return nil, fmt.Errorf("svm: %d feature rows vs %d responses", len(x), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	p := len(x[0])
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("svm: ragged features at row %d", i)
		}
	}
	opts.defaults()

	// Kernel access: cached matrix when affordable, else on-the-fly rows.
	var kmat []float64
	cached := n <= opts.MaxKernelCache
	if cached {
		kmat = make([]float64, n*n)
		for i := 0; i < n; i++ {
			kmat[i*n+i] = 2 // K(x,x)=1 plus the bias term
			for j := i + 1; j < n; j++ {
				v := rbf(x[i], x[j], opts.Gamma) + 1
				kmat[i*n+j] = v
				kmat[j*n+i] = v
			}
		}
	}
	kernelRow := func(i int, dst []float64) []float64 {
		if cached {
			return kmat[i*n : (i+1)*n]
		}
		for j := 0; j < n; j++ {
			dst[j] = rbf(x[i], x[j], opts.Gamma) + 1
		}
		return dst
	}

	beta := make([]float64, n)
	f := make([]float64, n) // f_i = Σ_j K'_ij β_j, maintained incrementally
	rowBuf := make([]float64, n)

	for pass := 0; pass < opts.MaxPasses; pass++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			row := kernelRow(i, rowBuf)
			kii := row[i]
			// Objective in β_i: ½·kii·β² + β·s + ε|β|, s = f_i − kii·β_i − y_i.
			s := f[i] - kii*beta[i] - y[i]
			var bNew float64
			switch {
			case s > opts.Epsilon:
				bNew = -(s - opts.Epsilon) / kii
			case s < -opts.Epsilon:
				bNew = -(s + opts.Epsilon) / kii
			default:
				bNew = 0
			}
			if bNew > opts.C {
				bNew = opts.C
			}
			if bNew < -opts.C {
				bNew = -opts.C
			}
			delta := bNew - beta[i]
			if delta == 0 {
				continue
			}
			beta[i] = bNew
			for j := 0; j < n; j++ {
				f[j] += delta * row[j]
			}
			if ad := math.Abs(delta); ad > maxDelta {
				maxDelta = ad
			}
		}
		if maxDelta < opts.Tol {
			break
		}
	}

	m := &SVR{C: opts.C, Gamma: opts.Gamma, Epsilon: opts.Epsilon}
	for i, b := range beta {
		if b != 0 {
			m.supportX = append(m.supportX, x[i])
			m.beta = append(m.beta, b)
		}
	}
	return m, nil
}

// NumSupportVectors returns the number of support vectors retained.
func (m *SVR) NumSupportVectors() int { return len(m.beta) }

// Predict evaluates f(x) = Σ β_i (K(x_i, x) + 1) at each query point.
func (m *SVR) Predict(x [][]float64) ([]float64, error) {
	out := make([]float64, len(x))
	for q, row := range x {
		if len(m.supportX) > 0 && len(row) != len(m.supportX[0]) {
			return nil, fmt.Errorf("svm: query %d has %d features, want %d", q, len(row), len(m.supportX[0]))
		}
		var s float64
		for i, sv := range m.supportX {
			s += m.beta[i] * (rbf(sv, row, m.Gamma) + 1)
		}
		out[q] = s
	}
	return out, nil
}
