package svm

import (
	"math"
	"math/rand"
	"testing"

	"spatialrepart/internal/metrics"
)

func TestSVRFitsSine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 6
		x[i] = []float64{v}
		y[i] = math.Sin(v)
	}
	m, err := FitSVR(x, y, Options{C: 10, Gamma: 1, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	rmse, _ := metrics.RMSE(pred, y)
	if rmse > 0.1 {
		t.Errorf("RMSE = %v, want < 0.1 on noiseless sine", rmse)
	}
}

func TestSVRWithinEpsilonTube(t *testing.T) {
	// With a large C and noiseless data, training residuals should mostly sit
	// within the ε-tube.
	rng := rand.New(rand.NewSource(2))
	n := 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a := rng.Float64()
		b := rng.Float64()
		x[i] = []float64{a, b}
		y[i] = a + 0.5*b
	}
	m, err := FitSVR(x, y, Options{C: 100, Gamma: 0.5, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pred, _ := m.Predict(x)
	outside := 0
	for i := range pred {
		if math.Abs(pred[i]-y[i]) > 0.05+1e-6 {
			outside++
		}
	}
	if outside > n/10 {
		t.Errorf("%d/%d residuals outside the ε-tube", outside, n)
	}
}

func TestSVRSparsity(t *testing.T) {
	// The ε-tube should leave many training points as non-support-vectors on
	// smooth data.
	rng := rand.New(rand.NewSource(3))
	n := 150
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v}
		y[i] = 2 * v
	}
	m, err := FitSVR(x, y, Options{C: 15, Gamma: 0.5, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupportVectors() >= n {
		t.Errorf("support vectors = %d, want < n = %d with a wide tube", m.NumSupportVectors(), n)
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors at all")
	}
}

func TestSVRUncachedKernelAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 60
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		v := rng.Float64() * 3
		x[i] = []float64{v}
		y[i] = v * v / 3
	}
	cached, err := FitSVR(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := FitSVR(x, y, Options{MaxKernelCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	pc, _ := cached.Predict(x)
	pu, _ := uncached.Predict(x)
	for i := range pc {
		if math.Abs(pc[i]-pu[i]) > 1e-9 {
			t.Fatalf("cached and uncached paths disagree at %d: %v vs %v", i, pc[i], pu[i])
		}
	}
}

func TestSVRDefaultsMatchPaper(t *testing.T) {
	var o Options
	o.defaults()
	if o.C != 15 || o.Gamma != 0.5 || o.Epsilon != 0.01 {
		t.Errorf("defaults = %+v, want C=15 gamma=0.5 epsilon=0.01 (Table I)", o)
	}
}

func TestSVRErrors(t *testing.T) {
	if _, err := FitSVR(nil, nil, Options{}); err == nil {
		t.Error("want empty error")
	}
	if _, err := FitSVR([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("want length mismatch error")
	}
	if _, err := FitSVR([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("want ragged error")
	}
	m, err := FitSVR([][]float64{{1}, {2}}, []float64{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([][]float64{{1, 2}}); err == nil {
		t.Error("want predict arity error")
	}
}

func TestSVRDeterministic(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}, {1.5}, {2}}
	y := []float64{0, 1, 2, 3, 4}
	a, err := FitSVR(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitSVR(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict(x)
	pb, _ := b.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("SVR training is not deterministic")
		}
	}
}
