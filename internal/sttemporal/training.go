package sttemporal

import (
	"fmt"

	"spatialrepart/internal/core"
	"spatialrepart/internal/grid"
)

// TrainingData flattens the reduced cube into a train-ready dataset: one
// instance per (temporal segment, non-null cell-group). The feature vector
// is the segment's group features minus the target, with the segment's
// normalized midpoint time appended as an extra feature; neighbors combine
// spatial adjacency within the same segment and temporal adjacency (the same
// group in consecutive segments) — the structure spatio-temporal models
// consume. A negative targetAttr keeps all attributes as features.
func (r *Result) TrainingData(targetAttr int, bounds grid.Bounds) (*core.Dataset, error) {
	first := r.Cube.Slices[0]
	p := first.NumAttrs()
	if targetAttr >= p {
		return nil, fmt.Errorf("sttemporal: target attribute %d out of range (have %d)", targetAttr, p)
	}
	part := r.Partition
	spatialAdj := part.AdjacencyList()
	T := float64(r.Cube.T())

	d := &core.Dataset{}
	// instOf[si][gi] → instance index or −1.
	instOf := make([][]int, len(r.Segments))
	for si := range instOf {
		instOf[si] = make([]int, len(part.Groups))
		for gi := range instOf[si] {
			instOf[si][gi] = -1
		}
	}
	for si, seg := range r.Segments {
		tMid := (float64(seg.TBeg) + float64(seg.TEnd) + 1) / 2 / T
		for gi, cg := range part.Groups {
			fv := r.Features[si][gi]
			if fv == nil {
				continue
			}
			instOf[si][gi] = d.Len()
			x := make([]float64, 0, p)
			for k := 0; k < p; k++ {
				if k == targetAttr {
					continue
				}
				x = append(x, fv[k])
			}
			x = append(x, tMid)
			y := 0.0
			if targetAttr >= 0 {
				y = fv[targetAttr]
			}
			latB, lonB := bounds.CellCenter(cg.RBeg, cg.CBeg, part.Rows, part.Cols)
			latE, lonE := bounds.CellCenter(cg.REnd, cg.CEnd, part.Rows, part.Cols)
			d.X = append(d.X, x)
			d.Y = append(d.Y, y)
			d.Lat = append(d.Lat, (latB+latE)/2)
			d.Lon = append(d.Lon, (lonB+lonE)/2)
			d.Corners = append(d.Corners, [4][2]float64{{latB, lonB}, {latB, lonE}, {latE, lonB}, {latE, lonE}})
			d.GroupSize = append(d.GroupSize, cg.Size()*seg.Len())
			d.GroupID = append(d.GroupID, si*len(part.Groups)+gi)
		}
	}

	// Neighbors: spatial within segment, temporal across consecutive
	// segments for the same group.
	d.Neighbors = make([][]int, d.Len())
	for si := range r.Segments {
		for gi := range part.Groups {
			ii := instOf[si][gi]
			if ii < 0 {
				continue
			}
			for _, ngi := range spatialAdj[gi] {
				if ni := instOf[si][ngi]; ni >= 0 {
					d.Neighbors[ii] = append(d.Neighbors[ii], ni)
				}
			}
			if si+1 < len(r.Segments) {
				if ni := instOf[si+1][gi]; ni >= 0 {
					d.Neighbors[ii] = append(d.Neighbors[ii], ni)
					d.Neighbors[ni] = append(d.Neighbors[ni], ii)
				}
			}
		}
	}
	return d, nil
}
