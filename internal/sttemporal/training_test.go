package sttemporal

import (
	"testing"

	"spatialrepart/internal/grid"
	"spatialrepart/internal/weights"
)

func boundsT() grid.Bounds { return grid.Bounds{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1} }

func TestTrainingDataShape(t *testing.T) {
	slices := []*grid.Grid{
		slice(4, 4, 10), slice(4, 4, 10),
		slice(4, 4, 100), slice(4, 4, 100),
	}
	c, _ := NewCube(slices)
	res, err := Repartition(c, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.TrainingData(0, boundsT())
	if err != nil {
		t.Fatal(err)
	}
	// One instance per segment×non-null group.
	wantInstances := 0
	for si := range res.Segments {
		for gi := range res.Partition.Groups {
			if res.Features[si][gi] != nil {
				wantInstances++
			}
		}
	}
	if d.Len() != wantInstances {
		t.Fatalf("instances = %d, want %d", d.Len(), wantInstances)
	}
	// Univariate target with the time feature appended: exactly 1 feature.
	if d.NumFeatures() != 1 {
		t.Fatalf("features = %d, want 1 (time)", d.NumFeatures())
	}
	// Time features lie in (0, 1] and differ across segments.
	if res.NumSegments() >= 2 {
		t0 := d.X[0][0]
		tLast := d.X[d.Len()-1][0]
		if t0 == tLast {
			t.Error("time feature constant across segments")
		}
	}
	for _, x := range d.X {
		if x[len(x)-1] <= 0 || x[len(x)-1] > 1 {
			t.Fatalf("time feature %v outside (0,1]", x[len(x)-1])
		}
	}
}

func TestTrainingDataNeighbors(t *testing.T) {
	slices := []*grid.Grid{slice(3, 3, 1), slice(3, 3, 50)}
	c, _ := NewCube(slices)
	res, err := Repartition(c, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := res.TrainingData(0, boundsT())
	if err != nil {
		t.Fatal(err)
	}
	w := weights.New(d.Neighbors)
	if err := w.Validate(); err != nil {
		t.Fatalf("adjacency invalid: %v", err)
	}
	// With two segments and a single group each (constant slices), the two
	// instances must be temporal neighbors of each other.
	if res.NumSegments() == 2 && d.Len() == 2 {
		if len(d.Neighbors[0]) != 1 || d.Neighbors[0][0] != 1 {
			t.Errorf("temporal adjacency missing: %v", d.Neighbors)
		}
	}
}

func TestTrainingDataTargetValidation(t *testing.T) {
	c, _ := NewCube([]*grid.Grid{slice(2, 2, 1)})
	res, err := Repartition(c, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.TrainingData(5, boundsT()); err == nil {
		t.Error("want target range error")
	}
	d, err := res.TrainingData(-1, boundsT())
	if err != nil {
		t.Fatal(err)
	}
	// Unsupervised: all attributes + time.
	if d.NumFeatures() != 2 {
		t.Errorf("unsupervised features = %d, want 2", d.NumFeatures())
	}
}
