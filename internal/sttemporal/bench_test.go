package sttemporal

import (
	"testing"

	"spatialrepart/internal/datagen"
	"spatialrepart/internal/grid"
)

func benchCube(b *testing.B, slices, rows, cols int) *Cube {
	b.Helper()
	var gs []*grid.Grid
	for i := 0; i < slices; i++ {
		// Alternate between two regimes so both phases do real work.
		seed := int64(1)
		if i >= slices/2 {
			seed = 2
		}
		gs = append(gs, datagen.VehiclesUni(seed, rows, cols).Grid)
	}
	c, err := NewCube(gs)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkRepartitionCube(b *testing.B) {
	c := benchCube(b, 8, 24, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Repartition(c, Options{Threshold: 0.15}); err != nil {
			b.Fatal(err)
		}
	}
}
