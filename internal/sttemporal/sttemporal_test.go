package sttemporal

import (
	"math"
	"testing"

	"spatialrepart/internal/datagen"
	"spatialrepart/internal/grid"
)

func uniAttrs() []grid.Attribute {
	return []grid.Attribute{{Name: "v", Agg: grid.Average}}
}

// slice builds a constant-valued grid.
func slice(rows, cols int, v float64) *grid.Grid {
	g := grid.New(rows, cols, uniAttrs())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.Set(r, c, 0, v)
		}
	}
	return g
}

func TestNewCubeValidation(t *testing.T) {
	if _, err := NewCube(nil); err == nil {
		t.Error("want empty-cube error")
	}
	a := slice(2, 2, 1)
	b := slice(3, 2, 1)
	if _, err := NewCube([]*grid.Grid{a, b}); err == nil {
		t.Error("want dimension mismatch error")
	}
	c := grid.New(2, 2, []grid.Attribute{{Name: "other", Agg: grid.Sum}})
	if _, err := NewCube([]*grid.Grid{a, c}); err == nil {
		t.Error("want attribute mismatch error")
	}
	if _, err := NewCube([]*grid.Grid{a, slice(2, 2, 9)}); err != nil {
		t.Errorf("valid cube rejected: %v", err)
	}
}

func TestRepartitionConstantCubeCollapsesToOneSegment(t *testing.T) {
	slices := []*grid.Grid{
		slice(4, 4, 5), slice(4, 4, 5), slice(4, 4, 5), slice(4, 4, 5),
	}
	c, err := NewCube(slices)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repartition(c, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSegments() != 1 {
		t.Errorf("segments = %d, want 1 for a constant cube", res.NumSegments())
	}
	if res.IFL != 0 {
		t.Errorf("IFL = %v, want 0", res.IFL)
	}
	// Spatial partition collapses the constant grid to a single group.
	if got := res.Partition.NumGroups(); got != 1 {
		t.Errorf("spatial groups = %d, want 1", got)
	}
}

func TestRepartitionBreaksSegmentsAtRegimeChange(t *testing.T) {
	// Two temporal regimes with very different values must not merge.
	slices := []*grid.Grid{
		slice(4, 4, 10), slice(4, 4, 10), slice(4, 4, 10),
		slice(4, 4, 100), slice(4, 4, 100),
	}
	c, _ := NewCube(slices)
	res, err := Repartition(c, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSegments() != 2 {
		t.Fatalf("segments = %v, want the two regimes separated", res.Segments)
	}
	if res.Segments[0].TEnd != 2 || res.Segments[1].TBeg != 3 {
		t.Errorf("segment boundaries = %v, want split at t=3", res.Segments)
	}
	if res.IFL > 0.1 {
		t.Errorf("IFL = %v exceeds threshold", res.IFL)
	}
}

func TestRepartitionSegmentsCoverAllSlices(t *testing.T) {
	var slices []*grid.Grid
	for i := 0; i < 6; i++ {
		d := datagen.VehiclesUni(int64(100+i), 10, 10)
		slices = append(slices, d.Grid)
	}
	c, err := NewCube(slices)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repartition(c, Options{Threshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	prevEnd := -1
	for _, s := range res.Segments {
		if s.TBeg != prevEnd+1 {
			t.Fatalf("segments not contiguous: %v", res.Segments)
		}
		covered += s.Len()
		prevEnd = s.TEnd
	}
	if covered != c.T() {
		t.Fatalf("segments cover %d slices, want %d", covered, c.T())
	}
	if res.IFL > 0.15+1e-9 {
		t.Errorf("cube IFL = %v exceeds threshold", res.IFL)
	}
}

func TestRepartitionThresholdValidation(t *testing.T) {
	c, _ := NewCube([]*grid.Grid{slice(2, 2, 1)})
	if _, err := Repartition(c, Options{Threshold: -1}); err == nil {
		t.Error("want threshold error")
	}
	if _, err := Repartition(c, Options{Threshold: 0.1, SpatialShare: 2}); err == nil {
		t.Error("want share error")
	}
}

func TestValueAtReconstruction(t *testing.T) {
	slices := []*grid.Grid{slice(2, 2, 10), slice(2, 2, 12)}
	c, _ := NewCube(slices)
	res, err := Repartition(c, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.ValueAt(0, 0, 0, 0)
	if !ok {
		t.Fatal("cell not represented")
	}
	// Representative is between the two regime values (11 when merged, or
	// the slice value when split).
	if v < 10 || v > 12 {
		t.Errorf("ValueAt = %v, want within [10,12]", v)
	}
	if _, ok := res.ValueAt(99, 0, 0, 0); ok {
		t.Error("out-of-range time should not resolve")
	}
}

func TestSumAttributeSegmentRepresentative(t *testing.T) {
	// Sum attribute: the segment value must be one slice's worth (averaged
	// over slices), split across group cells by ValueAt.
	attrs := []grid.Attribute{{Name: "count", Agg: grid.Sum}}
	mk := func(v float64) *grid.Grid {
		g := grid.New(1, 2, attrs)
		g.Set(0, 0, 0, v)
		g.Set(0, 1, 0, v)
		return g
	}
	c, _ := NewCube([]*grid.Grid{mk(4), mk(4)})
	res, err := Repartition(c, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.ValueAt(0, 0, 0, 0)
	if !ok {
		t.Fatal("cell not represented")
	}
	if math.Abs(v-4) > 1e-9 {
		t.Errorf("per-cell representative = %v, want 4", v)
	}
	if res.IFL > 1e-9 {
		t.Errorf("IFL = %v, want 0 for an exactly representable cube", res.IFL)
	}
}

func TestMeanGridHandlesPartialValidity(t *testing.T) {
	a := grid.New(1, 2, uniAttrs())
	a.Set(0, 0, 0, 10) // cell 1 null in slice 0
	b := grid.New(1, 2, uniAttrs())
	b.Set(0, 0, 0, 20)
	b.Set(0, 1, 0, 6)
	c, _ := NewCube([]*grid.Grid{a, b})
	m := meanGrid(c)
	if m.At(0, 0, 0) != 15 {
		t.Errorf("mean = %v, want 15", m.At(0, 0, 0))
	}
	if !m.Valid(0, 1) || m.At(0, 1, 0) != 6 {
		t.Errorf("partially-valid cell should average over its valid slices")
	}
}
