// Package sttemporal extends the re-partitioning framework to
// spatio-temporal datasets — the first of the paper's §VI future-work
// directions, in the spirit of the 2D-STR reduction the IFL metric is
// borrowed from. A dataset is a cube: T time slices of the same m×n grid.
// Reduction happens in two phases that share one information-loss budget:
//
//  1. Spatial phase: the temporal-mean grid is re-partitioned with half the
//     budget, producing ONE rectangular cell-group partition that all slices
//     share (aligned partitions keep adjacency and instance identity stable
//     over time, which downstream temporal models require).
//  2. Temporal phase: consecutive slices are greedily merged into segments;
//     a segment grows while representing all its slices by one feature
//     vector per group keeps the cube-wide information loss within the full
//     threshold.
//
// The result maps any (time, cell) back to its (segment, group)
// representative value, mirroring §III-C.
package sttemporal

import (
	"fmt"

	"spatialrepart/internal/core"
	"spatialrepart/internal/grid"
)

// Cube is a spatio-temporal dataset: time-ordered slices of one grid.
type Cube struct {
	Slices []*grid.Grid
}

// NewCube validates that all slices share dimensions and attributes.
func NewCube(slices []*grid.Grid) (*Cube, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("sttemporal: empty cube")
	}
	first := slices[0]
	for i, s := range slices[1:] {
		if s.Rows != first.Rows || s.Cols != first.Cols {
			return nil, fmt.Errorf("sttemporal: slice %d is %dx%d, want %dx%d", i+1, s.Rows, s.Cols, first.Rows, first.Cols)
		}
		if s.NumAttrs() != first.NumAttrs() {
			return nil, fmt.Errorf("sttemporal: slice %d has %d attributes, want %d", i+1, s.NumAttrs(), first.NumAttrs())
		}
		for k, a := range s.Attrs {
			if a != first.Attrs[k] {
				return nil, fmt.Errorf("sttemporal: slice %d attribute %d differs", i+1, k)
			}
		}
	}
	return &Cube{Slices: slices}, nil
}

// T returns the number of time slices.
func (c *Cube) T() int { return len(c.Slices) }

// Segment is a run of consecutive time slices represented together.
type Segment struct {
	TBeg, TEnd int // inclusive
}

// Len returns the number of slices in the segment.
func (s Segment) Len() int { return s.TEnd - s.TBeg + 1 }

// Options configures Repartition.
type Options struct {
	// Threshold is the cube-wide information-loss budget θ ∈ [0, 1].
	Threshold float64
	// SpatialShare is the fraction of the budget given to the spatial phase
	// (0 means the default 0.5).
	SpatialShare float64
}

// Result is the spatio-temporal re-partitioning output.
type Result struct {
	Cube      *Cube
	Partition *core.Partition // shared spatial partition
	Segments  []Segment
	// Features[s][g] is the feature vector representing group g during
	// segment s (nil for null groups).
	Features [][][]float64
	// IFL is the cube-wide Eq. 3 loss of the representation.
	IFL float64
	// SpatialIFL is the loss of the spatial phase alone (against the mean
	// grid's slices).
	SpatialIFL float64
}

// NumSegments returns the number of temporal segments.
func (r *Result) NumSegments() int { return len(r.Segments) }

// Repartition reduces the cube. See the package comment for the algorithm.
func Repartition(c *Cube, opts Options) (*Result, error) {
	if opts.Threshold < 0 || opts.Threshold > 1 {
		return nil, fmt.Errorf("sttemporal: threshold %v outside [0,1]", opts.Threshold)
	}
	share := opts.SpatialShare
	if share == 0 {
		share = 0.5
	}
	if share < 0 || share > 1 {
		return nil, fmt.Errorf("sttemporal: spatial share %v outside [0,1]", share)
	}

	part, spatialIFL, err := spatialPhase(c, opts.Threshold*share)
	if err != nil {
		return nil, err
	}

	res := &Result{Cube: c, Partition: part, SpatialIFL: spatialIFL}

	// Temporal phase: grow segments greedily while the cube-wide IFL of the
	// representation so far stays within the full threshold.
	t := 0
	for t < c.T() {
		end := t
		feats := segmentFeatures(c, part, t, end)
		// Try to extend the segment one slice at a time.
		for end+1 < c.T() {
			candidate := segmentFeatures(c, part, t, end+1)
			if segmentIFL(c, part, t, end+1, candidate) > opts.Threshold {
				break
			}
			end++
			feats = candidate
		}
		res.Segments = append(res.Segments, Segment{TBeg: t, TEnd: end})
		res.Features = append(res.Features, feats)
		t = end + 1
	}

	res.IFL = cubeIFL(c, part, res.Segments, res.Features)
	return res, nil
}

// spatialPhase finds the coarsest shared rectangular partition whose WORST
// per-slice information loss stays within the spatial budget. Candidate
// partitions come from the variation ladder of the temporal-mean grid
// (merging cells that are similar on average); acceptance is checked against
// every individual slice, so the bound holds for the real data rather than
// its average. Exponential search plus bisection over the ladder, mirroring
// core.ScheduleGeometric.
func spatialPhase(c *Cube, budget float64) (*core.Partition, float64, error) {
	mean := meanGrid(c)
	if err := grid.ValidateAttrs(mean.Attrs); err != nil {
		return nil, 0, err
	}
	norm, _ := mean.Normalized()
	field := core.BuildField(norm)
	ladder := field.Ladder()

	worstSliceIFL := func(part *core.Partition) float64 {
		worst := 0.0
		for t := 0; t < c.T(); t++ {
			feats := segmentFeatures(c, part, t, t)
			if ifl := segmentIFL(c, part, t, t, feats); ifl > worst {
				worst = ifl
			}
		}
		return worst
	}

	best := core.Identity(mean)
	bestIFL := worstSliceIFL(best)
	if bestIFL > budget {
		// Even the unmerged partition overshoots (can only stem from the
		// zero-span guard on degenerate data); keep the identity partition.
		return best, bestIFL, nil
	}
	tryRung := func(i int) bool {
		part := core.ExtractField(field, ladder.Rung(i))
		if ifl := worstSliceIFL(part); ifl <= budget {
			best, bestIFL = part, ifl
			return true
		}
		return false
	}
	lastGood, firstBad := -1, ladder.Len()
	for step := 1; lastGood+step < ladder.Len(); step *= 2 {
		i := lastGood + step
		if tryRung(i) {
			lastGood = i
		} else {
			firstBad = i
			break
		}
	}
	for lo, hi := lastGood+1, firstBad-1; lo <= hi; {
		mid := (lo + hi) / 2
		if tryRung(mid) {
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best, bestIFL, nil
}

// meanGrid averages each cell's feature vector over the slices where it is
// valid (sums are averaged too — the partition only needs relative
// structure). A cell valid in no slice stays null.
func meanGrid(c *Cube) *grid.Grid {
	first := c.Slices[0]
	p := first.NumAttrs()
	out := grid.New(first.Rows, first.Cols, first.Attrs)
	counts := make([]int, first.NumCells())
	sums := make([]float64, first.NumCells()*p)
	catVotes := make([]map[float64]int, 0)
	catCols := []int{}
	for k, a := range first.Attrs {
		if a.Categorical {
			catCols = append(catCols, k)
		}
	}
	if len(catCols) > 0 {
		catVotes = make([]map[float64]int, first.NumCells()*len(catCols))
	}
	for _, s := range c.Slices {
		for r := 0; r < s.Rows; r++ {
			for col := 0; col < s.Cols; col++ {
				if !s.Valid(r, col) {
					continue
				}
				idx := r*s.Cols + col
				counts[idx]++
				for k := 0; k < p; k++ {
					sums[idx*p+k] += s.At(r, col, k)
				}
				for ci, k := range catCols {
					m := catVotes[idx*len(catCols)+ci]
					if m == nil {
						m = map[float64]int{}
						catVotes[idx*len(catCols)+ci] = m
					}
					m[s.At(r, col, k)]++
				}
			}
		}
	}
	fv := make([]float64, p)
	for r := 0; r < first.Rows; r++ {
		for col := 0; col < first.Cols; col++ {
			idx := r*first.Cols + col
			if counts[idx] == 0 {
				continue
			}
			for k := 0; k < p; k++ {
				fv[k] = sums[idx*p+k] / float64(counts[idx])
			}
			for ci, k := range catCols {
				best, bestN := 0.0, -1
				for v, n := range catVotes[idx*len(catCols)+ci] {
					if n > bestN || (n == bestN && v < best) {
						best, bestN = v, n
					}
				}
				fv[k] = best
			}
			out.SetVector(r, col, fv)
		}
	}
	return out
}

// segmentFeatures allocates one feature vector per group from all cells of
// the group across slices [tb, te] (Algorithm 2 semantics; sums are averaged
// over slices so a segment's value represents one slice's worth).
func segmentFeatures(c *Cube, part *core.Partition, tb, te int) [][]float64 {
	p := c.Slices[0].NumAttrs()
	attrs := c.Slices[0].Attrs
	feats := make([][]float64, len(part.Groups))
	vals := make([]float64, 0, 64)
	for gi, cg := range part.Groups {
		anyValid := false
		fv := make([]float64, p)
		for k := 0; k < p; k++ {
			vals = vals[:0]
			// For sum attributes, collect each SLICE's group sum so the
			// representative is a per-slice group value.
			if attrs[k].Agg == grid.Sum {
				for t := tb; t <= te; t++ {
					s := c.Slices[t]
					var sliceSum float64
					sliceValid := false
					for r := cg.RBeg; r <= cg.REnd; r++ {
						for col := cg.CBeg; col <= cg.CEnd; col++ {
							if s.Valid(r, col) {
								sliceSum += s.At(r, col, k)
								sliceValid = true
							}
						}
					}
					if sliceValid {
						vals = append(vals, sliceSum)
						anyValid = true
					}
				}
				if len(vals) > 0 {
					var total float64
					for _, v := range vals {
						total += v
					}
					fv[k] = total / float64(len(vals))
				}
				continue
			}
			for t := tb; t <= te; t++ {
				s := c.Slices[t]
				for r := cg.RBeg; r <= cg.REnd; r++ {
					for col := cg.CBeg; col <= cg.CEnd; col++ {
						if s.Valid(r, col) {
							vals = append(vals, s.At(r, col, k))
							anyValid = true
						}
					}
				}
			}
			if len(vals) > 0 {
				fv[k] = allocateAverage(attrs[k], vals)
			}
		}
		if anyValid {
			feats[gi] = fv
		}
	}
	return feats
}

// allocateAverage mirrors Algorithm 2's average/categorical rule.
func allocateAverage(attr grid.Attribute, vals []float64) float64 {
	if attr.Categorical {
		return modeOf(vals)
	}
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if attr.Integer {
		mean = roundHalf(mean)
	}
	m := modeOf(vals)
	if meanLoss(vals, mean) <= meanLoss(vals, m) {
		return mean
	}
	return m
}

// segmentIFL evaluates Eq. 3 over slices [tb, te] only.
func segmentIFL(c *Cube, part *core.Partition, tb, te int, feats [][]float64) float64 {
	return iflOver(c, part, []Segment{{tb, te}}, [][][]float64{feats})
}

// cubeIFL evaluates Eq. 3 over the whole cube.
func cubeIFL(c *Cube, part *core.Partition, segs []Segment, feats [][][]float64) float64 {
	return iflOver(c, part, segs, feats)
}

func iflOver(c *Cube, part *core.Partition, segs []Segment, feats [][][]float64) float64 {
	first := c.Slices[0]
	p := first.NumAttrs()
	attrs := first.Attrs
	spans := cubeSpans(c)
	groupSize := make([]int, len(part.Groups))
	for gi, cg := range part.Groups {
		groupSize[gi] = cg.Size()
	}
	var sum float64
	valid := 0
	for si, seg := range segs {
		for t := seg.TBeg; t <= seg.TEnd; t++ {
			s := c.Slices[t]
			for r := 0; r < s.Rows; r++ {
				for col := 0; col < s.Cols; col++ {
					if !s.Valid(r, col) {
						continue
					}
					gi := part.GroupOf(r, col)
					fv := feats[si][gi]
					if fv == nil {
						continue
					}
					valid++
					for k := 0; k < p; k++ {
						rep := fv[k]
						if attrs[k].Agg == grid.Sum {
							rep /= float64(groupSize[gi])
						}
						sum += core.IFLTermAttr(attrs[k], s.At(r, col, k), rep, spans[k])
					}
				}
			}
		}
	}
	if valid == 0 || p == 0 {
		return 0
	}
	return sum / float64(valid*p)
}

// cubeSpans returns per-attribute value spans over the whole cube.
func cubeSpans(c *Cube) []float64 {
	p := c.Slices[0].NumAttrs()
	spans := make([]float64, p)
	lo := make([]float64, p)
	hi := make([]float64, p)
	init := false
	for _, s := range c.Slices {
		rng := s.Ranges()
		if s.ValidCount() == 0 {
			continue
		}
		for k := 0; k < p; k++ {
			if !init {
				lo[k], hi[k] = rng[k].Min, rng[k].Max
			} else {
				if rng[k].Min < lo[k] {
					lo[k] = rng[k].Min
				}
				if rng[k].Max > hi[k] {
					hi[k] = rng[k].Max
				}
			}
		}
		init = true
	}
	for k := 0; k < p; k++ {
		spans[k] = hi[k] - lo[k]
	}
	return spans
}

// ValueAt returns the representative value the reduced cube assigns to
// attribute k of cell (r, c) at time t (§III-C extended with time), and
// whether that cell is represented at all.
func (r *Result) ValueAt(t, row, col, k int) (float64, bool) {
	si := -1
	for i, seg := range r.Segments {
		if t >= seg.TBeg && t <= seg.TEnd {
			si = i
			break
		}
	}
	if si < 0 {
		return 0, false
	}
	gi := r.Partition.GroupOf(row, col)
	fv := r.Features[si][gi]
	if fv == nil {
		return 0, false
	}
	attrs := r.Cube.Slices[0].Attrs
	v := fv[k]
	if attrs[k].Agg == grid.Sum {
		v /= float64(r.Partition.Groups[gi].Size())
	}
	return v, true
}

func modeOf(vals []float64) float64 {
	counts := make(map[float64]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	best, bestN := 0.0, -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

func meanLoss(vals []float64, rep float64) float64 {
	var s float64
	for _, v := range vals {
		d := v - rep
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(vals))
}

func roundHalf(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return -float64(int64(-x + 0.5))
}
