package regress

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"spatialrepart/internal/mat"
)

// GWR is a geographically weighted regression: a separate weighted least
// squares fit at every prediction location, with Gaussian kernel weights and
// an adaptive bandwidth (the distance to the k-th nearest training point —
// the paper's `fixed: False` setting). k is chosen by minimizing the
// corrected Akaike information criterion (criterion: AICc).
type GWR struct {
	K      int // adaptive bandwidth neighbor count
	Kernel GWRKernel

	x        [][]float64
	y        []float64
	lat, lon []float64
}

// weight evaluates the kernel at squared distance d2 with squared bandwidth
// b2.
func (g *GWR) weight(d2, b2 float64) float64 {
	if g.Kernel == BisquareKernel {
		if d2 >= b2 {
			return 0
		}
		u := 1 - d2/b2
		return u * u
	}
	return math.Exp(-0.5 * d2 / b2)
}

// GWRKernel selects the distance-decay weighting function.
type GWRKernel int

const (
	// GaussianKernel is exp(−½ (d/b)²) — the paper's Table I setting.
	GaussianKernel GWRKernel = iota
	// BisquareKernel is (1 − (d/b)²)² for d < b and 0 beyond — compactly
	// supported, the other standard GWR choice.
	BisquareKernel
)

// String implements fmt.Stringer.
func (k GWRKernel) String() string {
	switch k {
	case GaussianKernel:
		return "gaussian"
	case BisquareKernel:
		return "bisquare"
	}
	return fmt.Sprintf("GWRKernel(%d)", int(k))
}

// GWROptions configures FitGWR.
type GWROptions struct {
	// K fixes the adaptive bandwidth neighbor count; 0 selects it by AICc.
	K int
	// AICcSample caps the number of training points used to evaluate AICc
	// during bandwidth selection (0 = 400). Leverages and residuals are
	// averaged over the sample and extrapolated, keeping selection O(sample·n).
	AICcSample int
	// Kernel selects the weighting function (default Gaussian, per Table I).
	Kernel GWRKernel
}

// FitGWR stores the training data and selects the adaptive bandwidth.
func FitGWR(x [][]float64, y, lat, lon []float64, opts GWROptions) (*GWR, error) {
	n := len(y)
	if len(x) != n || len(lat) != n || len(lon) != n {
		return nil, fmt.Errorf("regress: GWR input length mismatch (%d,%d,%d,%d)", len(x), n, len(lat), len(lon))
	}
	if n == 0 {
		return nil, fmt.Errorf("regress: GWR needs at least one instance")
	}
	p := len(x[0]) + 1
	g := &GWR{Kernel: opts.Kernel, x: x, y: y, lat: lat, lon: lon}
	if opts.K > 0 {
		g.K = opts.K
		return g, nil
	}

	sample := opts.AICcSample
	if sample <= 0 {
		sample = 400
	}
	if sample > n {
		sample = n
	}
	stride := n / sample
	if stride < 1 {
		stride = 1
	}

	// Candidate neighbor counts from small local fits to the global fit.
	minK := p + 2
	if minK >= n {
		minK = n - 1
	}
	if minK < 1 {
		minK = 1
	}
	var candidates []int
	for k := minK; k < n; k = k*3/2 + 1 {
		candidates = append(candidates, k)
	}
	if len(candidates) == 0 {
		candidates = []int{minK}
	}

	bestK, bestAICc := candidates[0], math.Inf(1)
	for _, k := range candidates {
		aicc, err := g.aicc(k, stride)
		if err != nil {
			continue
		}
		if aicc < bestAICc {
			bestK, bestAICc = k, aicc
		}
	}
	g.K = bestK
	return g, nil
}

// aicc evaluates the corrected AIC for bandwidth k over every stride-th
// training point, extrapolating the residual sum of squares and the hat
// trace to the full training set.
func (g *GWR) aicc(k, stride int) (float64, error) {
	n := len(g.y)
	var rss, trS float64
	count := 0
	for i := 0; i < n; i += stride {
		pred, lev, err := g.localFit(g.x[i], g.lat[i], g.lon[i], k, true, i)
		if err != nil {
			return 0, err
		}
		d := g.y[i] - pred
		rss += d * d
		trS += lev
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("regress: empty AICc sample")
	}
	scale := float64(n) / float64(count)
	rss *= scale
	trS *= scale
	sigma2 := rss / float64(n)
	if sigma2 <= 0 {
		sigma2 = 1e-300
	}
	den := float64(n) - 2 - trS
	if den <= 0 {
		return math.Inf(1), nil
	}
	return float64(n)*math.Log(sigma2) + float64(n)*math.Log(2*math.Pi) +
		float64(n)*(float64(n)+trS)/den, nil
}

// localFit runs one weighted least squares fit centered at (clat, clon) and
// evaluates it at feature vector xq. When wantLeverage is set, selfIdx names
// the training index whose hat-diagonal to report.
func (g *GWR) localFit(xq []float64, clat, clon float64, k int, wantLeverage bool, selfIdx int) (pred, leverage float64, err error) {
	n := len(g.y)
	d2 := make([]float64, n)
	for j := 0; j < n; j++ {
		dlat, dlon := g.lat[j]-clat, g.lon[j]-clon
		d2[j] = dlat*dlat + dlon*dlon
	}
	// Adaptive bandwidth: distance to the k-th nearest training point.
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		k = 1
	}
	sorted := make([]float64, n)
	copy(sorted, d2)
	sort.Float64s(sorted)
	b2 := sorted[k]
	if b2 <= 0 {
		b2 = 1e-12
	}

	p := len(xq) + 1
	a := mat.NewDense(p, p)
	bv := make([]float64, p)
	xi := make([]float64, p)
	for j := 0; j < n; j++ {
		w := g.weight(d2[j], b2)
		if w < 1e-12 {
			continue
		}
		xi[0] = 1
		copy(xi[1:], g.x[j])
		for r := 0; r < p; r++ {
			wr := w * xi[r]
			bv[r] += wr * g.y[j]
			arow := a.Row(r)
			for c := r; c < p; c++ {
				arow[c] += wr * xi[c]
			}
		}
	}
	for r := 0; r < p; r++ {
		for c := 0; c < r; c++ {
			a.Set(r, c, a.At(c, r))
		}
	}
	// Tiny ridge for degenerate local designs.
	for r := 0; r < p; r++ {
		a.Set(r, r, a.At(r, r)+1e-9)
	}
	beta, err := mat.SolveCholesky(a, bv)
	if err != nil {
		beta, err = mat.SolveLU(a, bv)
		if err != nil {
			return 0, 0, fmt.Errorf("regress: GWR local solve: %w", err)
		}
	}
	pred = beta[0]
	for j, f := range xq {
		pred += beta[j+1] * f
	}
	if wantLeverage && selfIdx >= 0 {
		xi[0] = 1
		copy(xi[1:], g.x[selfIdx])
		z, err := mat.SolveCholesky(a, xi)
		if err != nil {
			z, err = mat.SolveLU(a, xi)
			if err != nil {
				return 0, 0, err
			}
		}
		// hat_ii = w_ii · xᵢᵀ A⁻¹ xᵢ with w_ii = kernel(0) = 1.
		leverage = mat.Dot(xi, z)
	}
	return pred, leverage, nil
}

// Predict evaluates the local regression at each query location. Local fits
// are independent, so queries run on all available cores.
func (g *GWR) Predict(x [][]float64, lat, lon []float64) ([]float64, error) {
	if len(x) != len(lat) || len(lat) != len(lon) {
		return nil, fmt.Errorf("regress: GWR predict length mismatch")
	}
	for i := range x {
		if len(x[i]) != len(g.x[0]) {
			return nil, fmt.Errorf("regress: query %d has %d features, want %d", i, len(x[i]), len(g.x[0]))
		}
	}
	out := make([]float64, len(x))
	errs := make([]error, len(x))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(x) {
		workers = len(x)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pred, _, err := g.localFit(x[i], lat[i], lon[i], g.K, false, -1)
				out[i], errs[i] = pred, err
			}
		}()
	}
	for i := range x {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
