package regress

import (
	"math"
	"math/rand"
	"testing"

	"spatialrepart/internal/metrics"
	"spatialrepart/internal/weights"
)

func TestOLSRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = 5 + 2*a - 3*b
	}
	m, err := FitOLS(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -3}
	for i := range want {
		if math.Abs(m.Beta[i]-want[i]) > 1e-6 {
			t.Errorf("Beta[%d] = %v, want %v", i, m.Beta[i], want[i])
		}
	}
	pred, err := m.Predict([][]float64{{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-4) > 1e-6 {
		t.Errorf("Predict = %v, want 4", pred[0])
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Error("want empty-design error")
	}
	if _, err := FitOLS([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("want ragged-design error")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("want length mismatch error")
	}
	m := &OLS{Beta: []float64{0, 1}}
	if _, err := m.Predict([][]float64{{1, 2}}); err == nil {
		t.Error("want predict arity error")
	}
}

// gridWeights builds rook contiguity for an rows×cols lattice.
func gridWeights(rows, cols int) *weights.W {
	neighbors := make([][]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if r > 0 {
				neighbors[i] = append(neighbors[i], i-cols)
			}
			if r < rows-1 {
				neighbors[i] = append(neighbors[i], i+cols)
			}
			if c > 0 {
				neighbors[i] = append(neighbors[i], i-1)
			}
			if c < cols-1 {
				neighbors[i] = append(neighbors[i], i+1)
			}
		}
	}
	return weights.New(neighbors)
}

// synthLagData simulates y = ρWy + Xβ + ε by iterating the reduced form.
func synthLagData(seed int64, rows, cols int, rho float64, beta []float64, noise float64) (x [][]float64, y []float64, w *weights.W) {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	w = gridWeights(rows, cols)
	x = make([][]float64, n)
	xb := make([]float64, n)
	for i := range x {
		f := make([]float64, len(beta)-1)
		v := beta[0]
		for j := range f {
			f[j] = rng.Float64() * 4
			v += beta[j+1] * f[j]
		}
		x[i] = f
		xb[i] = v + rng.NormFloat64()*noise
	}
	// Solve y = ρWy + xb by fixed-point iteration (|ρ| < 1 converges).
	y = make([]float64, n)
	copy(y, xb)
	for it := 0; it < 100; it++ {
		wy, _ := w.Lag(y)
		for i := range y {
			y[i] = xb[i] + rho*wy[i]
		}
	}
	return x, y, w
}

func TestLagRecoversRho(t *testing.T) {
	x, y, w := synthLagData(2, 20, 20, 0.5, []float64{1, 2, -1}, 0.1)
	m, err := FitLag(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rho-0.5) > 0.1 {
		t.Errorf("Rho = %v, want ≈ 0.5", m.Rho)
	}
	if math.Abs(m.Beta[1]-2) > 0.3 || math.Abs(m.Beta[2]+1) > 0.3 {
		t.Errorf("Beta = %v, want ≈ [1 2 -1]", m.Beta)
	}
}

func TestLagPredictBeatsOLSOnLagData(t *testing.T) {
	x, y, w := synthLagData(3, 16, 16, 0.6, []float64{0, 1.5}, 0.2)
	m, err := FitLag(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	wy, _ := w.Lag(y)
	lagPred, err := m.Predict(x, wy)
	if err != nil {
		t.Fatal(err)
	}
	ols, _ := FitOLS(x, y)
	olsPred, _ := ols.Predict(x)
	lagRMSE, _ := metrics.RMSE(lagPred, y)
	olsRMSE, _ := metrics.RMSE(olsPred, y)
	if lagRMSE >= olsRMSE {
		t.Errorf("lag RMSE %v should beat OLS RMSE %v on spatially lagged data", lagRMSE, olsRMSE)
	}
}

func TestLagErrors(t *testing.T) {
	w := gridWeights(2, 2)
	if _, err := FitLag([][]float64{{1}}, []float64{1, 2, 3, 4}, w); err == nil {
		t.Error("want row mismatch error")
	}
	if _, err := FitLag(make([][]float64, 4), []float64{1, 2, 3, 4}, gridWeights(1, 2)); err == nil {
		t.Error("want weights size error")
	}
	m := &Lag{Rho: 0.5, Beta: []float64{0, 1}}
	if _, err := m.Predict([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("want lag length error")
	}
	if _, err := m.Predict([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("want feature arity error")
	}
}

func TestErrorModelRecoversLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, cols := 20, 20
	n := rows * cols
	w := gridWeights(rows, cols)
	lambda := 0.6
	beta := []float64{2, 1.5}
	x := make([][]float64, n)
	xb := make([]float64, n)
	eps := make([]float64, n)
	for i := range x {
		f := rng.Float64() * 5
		x[i] = []float64{f}
		xb[i] = beta[0] + beta[1]*f
		eps[i] = rng.NormFloat64()
	}
	// u = λWu + ε by fixed point.
	u := make([]float64, n)
	copy(u, eps)
	for it := 0; it < 100; it++ {
		wu, _ := w.Lag(u)
		for i := range u {
			u[i] = eps[i] + lambda*wu[i]
		}
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = xb[i] + u[i]
	}
	m, err := FitError(x, y, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Lambda-lambda) > 0.2 {
		t.Errorf("Lambda = %v, want ≈ %v", m.Lambda, lambda)
	}
	if math.Abs(m.Beta[1]-beta[1]) > 0.2 {
		t.Errorf("Beta[1] = %v, want ≈ %v", m.Beta[1], beta[1])
	}
	// The intercept rescaling must roughly recover the original β₀.
	if math.Abs(m.Beta[0]-beta[0]) > 1.0 {
		t.Errorf("Beta[0] = %v, want ≈ %v", m.Beta[0], beta[0])
	}
}

func TestErrorModelPredict(t *testing.T) {
	m := &Error{Lambda: 0.5, Beta: []float64{1, 2}}
	pred, err := m.Predict([][]float64{{3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 7 {
		t.Errorf("Predict = %v, want 7", pred[0])
	}
	pred, err = m.Predict([][]float64{{3}}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 8 {
		t.Errorf("Predict with residual lag = %v, want 8", pred[0])
	}
	if _, err := m.Predict([][]float64{{3}}, []float64{1, 2}); err == nil {
		t.Error("want residual lag length error")
	}
	if _, err := m.Predict([][]float64{{3, 4}}, nil); err == nil {
		t.Error("want feature arity error")
	}
}

func TestErrorModelInputValidation(t *testing.T) {
	w := gridWeights(2, 2)
	if _, err := FitError([][]float64{{1}}, []float64{1, 2, 3, 4}, w); err == nil {
		t.Error("want row mismatch error")
	}
	if _, err := FitError(make([][]float64, 4), []float64{1, 2, 3, 4}, gridWeights(1, 2)); err == nil {
		t.Error("want weights size error")
	}
}

// synthGWRData has a coefficient that varies smoothly over space — the
// setting where GWR beats global OLS.
func synthGWRData(seed int64, n int) (x [][]float64, y, lat, lon []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([][]float64, n)
	y = make([]float64, n)
	lat = make([]float64, n)
	lon = make([]float64, n)
	for i := 0; i < n; i++ {
		lat[i] = rng.Float64() * 10
		lon[i] = rng.Float64() * 10
		f := rng.Float64() * 5
		x[i] = []float64{f}
		localSlope := 1 + 0.5*lat[i] // slope drifts north
		y[i] = 2 + localSlope*f + rng.NormFloat64()*0.1
	}
	return x, y, lat, lon
}

func TestGWRBeatsOLSOnSpatiallyVaryingData(t *testing.T) {
	x, y, lat, lon := synthGWRData(5, 300)
	g, err := FitGWR(x, y, lat, lon, GWROptions{})
	if err != nil {
		t.Fatal(err)
	}
	gwrPred, err := g.Predict(x, lat, lon)
	if err != nil {
		t.Fatal(err)
	}
	ols, _ := FitOLS(x, y)
	olsPred, _ := ols.Predict(x)
	gwrRMSE, _ := metrics.RMSE(gwrPred, y)
	olsRMSE, _ := metrics.RMSE(olsPred, y)
	if gwrRMSE >= olsRMSE {
		t.Errorf("GWR RMSE %v should beat OLS RMSE %v on varying-coefficient data", gwrRMSE, olsRMSE)
	}
}

func TestGWRFixedK(t *testing.T) {
	x, y, lat, lon := synthGWRData(6, 100)
	g, err := FitGWR(x, y, lat, lon, GWROptions{K: 20})
	if err != nil {
		t.Fatal(err)
	}
	if g.K != 20 {
		t.Errorf("K = %d, want 20", g.K)
	}
	pred, err := g.Predict(x[:5], lat[:5], lon[:5])
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 5 {
		t.Fatalf("pred len = %d", len(pred))
	}
	for _, p := range pred {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("non-finite prediction")
		}
	}
}

func TestGWRErrors(t *testing.T) {
	if _, err := FitGWR(nil, nil, nil, nil, GWROptions{}); err == nil {
		t.Error("want empty error")
	}
	if _, err := FitGWR([][]float64{{1}}, []float64{1}, []float64{1, 2}, []float64{1}, GWROptions{}); err == nil {
		t.Error("want length mismatch error")
	}
	x, y, lat, lon := synthGWRData(7, 50)
	g, _ := FitGWR(x, y, lat, lon, GWROptions{K: 10})
	if _, err := g.Predict([][]float64{{1}}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("want predict length error")
	}
	if _, err := g.Predict([][]float64{{1, 2}}, []float64{1}, []float64{1}); err == nil {
		t.Error("want predict arity error")
	}
}

func TestGWRTinyDataset(t *testing.T) {
	// Degenerate but must not crash: fewer points than p+2.
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 2, 3}
	lat := []float64{0, 1, 2}
	lon := []float64{0, 0, 0}
	g, err := FitGWR(x, y, lat, lon, GWROptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := g.Predict(x, lat, lon)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if math.IsNaN(p) {
			t.Fatal("NaN prediction on tiny dataset")
		}
	}
}
