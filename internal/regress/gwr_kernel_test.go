package regress

import (
	"math"
	"testing"

	"spatialrepart/internal/metrics"
)

func TestGWRKernelString(t *testing.T) {
	if GaussianKernel.String() != "gaussian" || BisquareKernel.String() != "bisquare" {
		t.Error("kernel names wrong")
	}
	if GWRKernel(9).String() == "" {
		t.Error("unknown kernel should stringify")
	}
}

func TestGWRWeightShapes(t *testing.T) {
	gauss := &GWR{Kernel: GaussianKernel}
	bisq := &GWR{Kernel: BisquareKernel}
	// At distance 0 both are 1.
	if gauss.weight(0, 1) != 1 || bisq.weight(0, 1) != 1 {
		t.Error("weight at 0 should be 1")
	}
	// Bisquare has compact support; gaussian does not.
	if bisq.weight(1.5, 1) != 0 {
		t.Errorf("bisquare beyond bandwidth = %v, want 0", bisq.weight(1.5, 1))
	}
	if gauss.weight(1.5, 1) <= 0 {
		t.Error("gaussian should stay positive")
	}
	// Both decrease with distance.
	if bisq.weight(0.5, 1) >= bisq.weight(0.25, 1) {
		t.Error("bisquare not decreasing")
	}
	if gauss.weight(0.5, 1) >= gauss.weight(0.25, 1) {
		t.Error("gaussian not decreasing")
	}
}

func TestGWRBisquareFitsVaryingCoefficients(t *testing.T) {
	x, y, lat, lon := synthGWRData(31, 300)
	g, err := FitGWR(x, y, lat, lon, GWROptions{Kernel: BisquareKernel})
	if err != nil {
		t.Fatal(err)
	}
	if g.Kernel != BisquareKernel {
		t.Fatal("kernel not propagated")
	}
	pred, err := g.Predict(x, lat, lon)
	if err != nil {
		t.Fatal(err)
	}
	rmse, _ := metrics.RMSE(pred, y)
	ols, _ := FitOLS(x, y)
	op, _ := ols.Predict(x)
	orms, _ := metrics.RMSE(op, y)
	if rmse >= orms {
		t.Errorf("bisquare GWR RMSE %v should beat OLS %v", rmse, orms)
	}
	for _, p := range pred {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("non-finite prediction")
		}
	}
}
