package regress

import (
	"fmt"

	"spatialrepart/internal/weights"
)

// Error is a spatial error model y = Xβ + u with u = λ·Wu + ε. λ is
// estimated by a method-of-moments step on the OLS residuals and β by
// feasible GLS on the spatially filtered (Cochrane–Orcutt style) system
// (y − λWy) = (X − λWX)β + ε.
type Error struct {
	Lambda float64   // spatial error coefficient
	Beta   []float64 // intercept followed by feature coefficients
}

// FitError estimates the spatial error model.
func FitError(x [][]float64, y []float64, w *weights.W) (*Error, error) {
	n := len(y)
	if len(x) != n {
		return nil, fmt.Errorf("regress: %d feature rows vs %d responses", len(x), n)
	}
	if w.N() != n {
		return nil, fmt.Errorf("regress: weights cover %d instances, want %d", w.N(), n)
	}

	// Step 1: OLS residuals.
	ols, err := FitOLS(x, y)
	if err != nil {
		return nil, err
	}
	fitted, err := ols.Predict(x)
	if err != nil {
		return nil, err
	}
	u := make([]float64, n)
	for i := range u {
		u[i] = y[i] - fitted[i]
	}

	// Step 2: Kelejian–Prucha GMM estimate of λ from the three moment
	// conditions on ε = u − λWu (σ² profiled out, 1-D search over λ).
	lambda, err := kpLambda(u, w)
	if err != nil {
		return nil, err
	}

	// Step 3: feasible GLS on the filtered system.
	ys := make([]float64, n)
	wyv, err := w.Lag(y)
	if err != nil {
		return nil, err
	}
	for i := range ys {
		ys[i] = y[i] - lambda*wyv[i]
	}
	p := len(x[0])
	xs := make([][]float64, n)
	col := make([]float64, n)
	wcols := make([][]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			col[i] = x[i][j]
		}
		wc, err := w.Lag(col)
		if err != nil {
			return nil, err
		}
		wcols[j] = wc
	}
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		for j := 0; j < p; j++ {
			row[j] = x[i][j] - lambda*wcols[j][i]
		}
		xs[i] = row
	}
	// The filtered intercept column is (1 − λ·Wi·1) ≈ (1 − λ); FitOLS's
	// plain intercept absorbs the constant scale, so the fitted β₀ is the
	// filtered-system intercept. Rescale it back to the original system.
	fgls, err := FitOLS(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("regress: FGLS: %w", err)
	}
	beta := fgls.Beta
	if lambda != 1 { //spatialvet:ignore floateq guards division by the exact value 1-lambda; any lambda != 1 is safe to rescale
		beta[0] /= 1 - lambda
	}
	return &Error{Lambda: lambda, Beta: beta}, nil
}

// kpLambda implements the Kelejian–Prucha (1999) moment estimator for the
// spatial error coefficient. With u the OLS residuals, u1 = Wu, u2 = W²u and
// ε = u − λ·u1, the three moment conditions
//
//	E[εᵀε]/n  = σ²
//	E[ε₁ᵀε₁]/n = σ²·tr(WᵀW)/n   (ε₁ = Wε)
//	E[εᵀε₁]/n  = 0              (diag(W) = 0)
//
// become a system linear in (λ, λ², σ²). σ² enters linearly and is profiled
// out, leaving a smooth 1-D objective in λ minimized by scanning the
// stationary interval (−0.99, 0.99) and refining around the best point.
func kpLambda(u []float64, w *weights.W) (float64, error) {
	n := float64(len(u))
	u1, err := w.Lag(u)
	if err != nil {
		return 0, err
	}
	u2, err := w.Lag(u1)
	if err != nil {
		return 0, err
	}
	dot := func(a, b []float64) float64 {
		var s float64
		for i, v := range a {
			s += v * b[i]
		}
		return s
	}
	uu, uu1, u1u1, u1u2, uu2, u2u2 := dot(u, u), dot(u, u1), dot(u1, u1), dot(u1, u2), dot(u, u2), dot(u2, u2)
	// tr(WᵀW) for row-standardized binary W is Σᵢ 1/deg(i).
	var trWW float64
	for _, list := range w.Neighbors {
		if len(list) > 0 {
			trWW += 1 / float64(len(list))
		}
	}
	// Moment system G·(λ, λ², σ²)ᵀ = g.
	G := [3][3]float64{
		{2 * uu1 / n, -u1u1 / n, 1},
		{2 * u1u2 / n, -u2u2 / n, trWW / n},
		{(u1u1 + uu2) / n, -u1u2 / n, 0},
	}
	g := [3]float64{uu / n, u1u1 / n, uu1 / n}

	residual := func(lambda float64) float64 {
		var r [3]float64
		var num, den float64
		for i := 0; i < 3; i++ {
			r[i] = g[i] - G[i][0]*lambda - G[i][1]*lambda*lambda
			num += G[i][2] * r[i]
			den += G[i][2] * G[i][2]
		}
		sigma2 := 0.0
		if den > 0 {
			sigma2 = num / den
		}
		if sigma2 < 0 {
			sigma2 = 0
		}
		var s float64
		for i := 0; i < 3; i++ {
			d := r[i] - sigma2*G[i][2]
			s += d * d
		}
		return s
	}

	const bound = 0.99
	best, bestRes := 0.0, residual(0)
	for l := -bound; l <= bound; l += 0.005 {
		if r := residual(l); r < bestRes {
			best, bestRes = l, r
		}
	}
	// Golden-section refinement around the grid winner.
	lo, hi := best-0.005, best+0.005
	for it := 0; it < 40; it++ {
		m1 := lo + (hi-lo)*0.382
		m2 := lo + (hi-lo)*0.618
		if residual(m1) < residual(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	lambda := (lo + hi) / 2
	if lambda > bound {
		lambda = bound
	}
	if lambda < -bound {
		lambda = -bound
	}
	return lambda, nil
}

// Predict evaluates ŷ = Xβ + λ·lagResid, where lagResid is the spatial lag
// of observed residuals (y_obs − Xβ) around the prediction sites; pass nil
// to use the unconditional expectation Xβ.
func (m *Error) Predict(x [][]float64, lagResid []float64) ([]float64, error) {
	if lagResid != nil && len(lagResid) != len(x) {
		return nil, fmt.Errorf("regress: %d feature rows vs %d residual lags", len(x), len(lagResid))
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != len(m.Beta)-1 {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), len(m.Beta)-1)
		}
		v := m.Beta[0]
		for j, f := range row {
			v += m.Beta[j+1] * f
		}
		if lagResid != nil {
			v += m.Lambda * lagResid[i]
		}
		out[i] = v
	}
	return out, nil
}
