package regress

import (
	"math/rand"
	"testing"
)

func benchRegData(n, p int) (x [][]float64, y []float64) {
	rng := rand.New(rand.NewSource(1))
	x = make([][]float64, n)
	y = make([]float64, n)
	for i := range x {
		row := make([]float64, p)
		var v float64
		for j := range row {
			row[j] = rng.Float64() * 5
			v += float64(j+1) * row[j]
		}
		x[i] = row
		y[i] = v + rng.NormFloat64()
	}
	return x, y
}

func BenchmarkFitOLS(b *testing.B) {
	x, y := benchRegData(2000, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitOLS(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitLag(b *testing.B) {
	x, y, w := synthLagData(1, 30, 30, 0.5, []float64{1, 2, -1}, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLag(x, y, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitError(b *testing.B) {
	x, y, w := synthLagData(2, 30, 30, 0.4, []float64{1, 2, -1}, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitError(x, y, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitGWR(b *testing.B) {
	x, y, lat, lon := synthGWRData(3, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitGWR(x, y, lat, lon, GWROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGWRPredict(b *testing.B) {
	x, y, lat, lon := synthGWRData(4, 400)
	g, err := FitGWR(x, y, lat, lon, GWROptions{})
	if err != nil {
		b.Fatal(err)
	}
	qx, _, qlat, qlon := synthGWRData(5, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Predict(qx, qlat, qlon); err != nil {
			b.Fatal(err)
		}
	}
}
