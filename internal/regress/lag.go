package regress

import (
	"fmt"

	"spatialrepart/internal/mat"
	"spatialrepart/internal/weights"
)

// Lag is a spatial lag model y = ρ·Wy + Xβ + ε fitted by spatial two-stage
// least squares (Kelejian–Prucha): the endogenous spatial lag Wy is
// instrumented with [X, WX, W²X], which avoids the O(n³) log-determinants of
// the maximum-likelihood estimator while remaining a standard, consistent
// estimator for the same model.
type Lag struct {
	Rho  float64   // spatial autoregressive coefficient
	Beta []float64 // intercept followed by feature coefficients
}

// FitLag estimates the spatial lag model. The weights object must cover
// exactly the instances of x/y (binary contiguity, row-standardized lags).
func FitLag(x [][]float64, y []float64, w *weights.W) (*Lag, error) {
	n := len(y)
	if len(x) != n {
		return nil, fmt.Errorf("regress: %d feature rows vs %d responses", len(x), n)
	}
	if w.N() != n {
		return nil, fmt.Errorf("regress: weights cover %d instances, want %d", w.N(), n)
	}
	design, err := designMatrix(x)
	if err != nil {
		return nil, err
	}
	p := design.Cols

	wy, err := w.Lag(y)
	if err != nil {
		return nil, err
	}

	// Instruments H = [X | WX | W²X] (intercept only once).
	nf := p - 1
	h := mat.NewDense(n, p+2*nf)
	col := make([]float64, n)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			h.Set(i, j, design.At(i, j))
		}
	}
	for j := 0; j < nf; j++ {
		for i := 0; i < n; i++ {
			col[i] = design.At(i, j+1)
		}
		wx, err := w.Lag(col)
		if err != nil {
			return nil, err
		}
		w2x, err := w.Lag(wx)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			h.Set(i, p+j, wx[i])
			h.Set(i, p+nf+j, w2x[i])
		}
	}

	// First stage: project Wy onto the instrument space.
	gamma, err := mat.LeastSquaresQR(h, wy)
	if err != nil {
		return nil, fmt.Errorf("regress: lag first stage: %w", err)
	}
	wyHat, err := mat.MulVec(h, gamma)
	if err != nil {
		return nil, err
	}

	// Second stage: regress y on [ŴY | X].
	z := mat.NewDense(n, p+1)
	for i := 0; i < n; i++ {
		z.Set(i, 0, wyHat[i])
		copy(z.Row(i)[1:], design.Row(i))
	}
	delta, err := mat.LeastSquaresQR(z, y)
	if err != nil {
		return nil, fmt.Errorf("regress: lag second stage: %w", err)
	}
	return &Lag{Rho: delta[0], Beta: delta[1:]}, nil
}

// Predict evaluates ŷ = ρ·lagY + Xβ, where lagY is the spatial lag of the
// observed response at each prediction instance (computed by the caller from
// whatever response values are observable around the prediction sites —
// the transductive prediction protocol used for train/test evaluation).
func (m *Lag) Predict(x [][]float64, lagY []float64) ([]float64, error) {
	if len(x) != len(lagY) {
		return nil, fmt.Errorf("regress: %d feature rows vs %d lags", len(x), len(lagY))
	}
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != len(m.Beta)-1 {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), len(m.Beta)-1)
		}
		v := m.Beta[0] + m.Rho*lagY[i]
		for j, f := range row {
			v += m.Beta[j+1] * f
		}
		out[i] = v
	}
	return out, nil
}
