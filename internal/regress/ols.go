// Package regress implements the spatial regression models of Table II:
// ordinary least squares (the shared base), the spatial lag model (spatial
// two-stage least squares with Kelejian–Prucha instruments), the spatial
// error model (GMM λ estimate + feasible GLS), and geographically weighted
// regression (Gaussian kernel, AICc bandwidth selection) — the models the
// paper trains through PySAL, re-implemented from scratch on the stdlib.
package regress

import (
	"fmt"

	"spatialrepart/internal/mat"
)

// OLS is an ordinary least squares fit with intercept.
type OLS struct {
	// Beta holds the intercept in Beta[0] followed by one coefficient per
	// feature.
	Beta []float64
}

// FitOLS fits y = β₀ + β·x by least squares.
func FitOLS(x [][]float64, y []float64) (*OLS, error) {
	design, err := designMatrix(x)
	if err != nil {
		return nil, err
	}
	if design.Rows != len(y) {
		return nil, fmt.Errorf("regress: %d rows vs %d responses", design.Rows, len(y))
	}
	beta, err := mat.LeastSquaresQR(design, y)
	if err != nil {
		return nil, fmt.Errorf("regress: OLS solve: %w", err)
	}
	return &OLS{Beta: beta}, nil
}

// Predict evaluates the fitted line at each feature vector.
func (m *OLS) Predict(x [][]float64) ([]float64, error) {
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != len(m.Beta)-1 {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), len(m.Beta)-1)
		}
		v := m.Beta[0]
		for j, f := range row {
			v += m.Beta[j+1] * f
		}
		out[i] = v
	}
	return out, nil
}

// designMatrix prepends an intercept column of ones to the feature rows.
func designMatrix(x [][]float64) (*mat.Dense, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("regress: empty design")
	}
	p := len(x[0])
	d := mat.NewDense(len(x), p+1)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: ragged design at row %d", i)
		}
		d.Set(i, 0, 1)
		copy(d.Row(i)[1:], row)
	}
	return d, nil
}
