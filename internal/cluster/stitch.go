package cluster

import (
	"fmt"
	"sort"
)

// Fragment is one shard's contribution to a global cell-group, in GLOBAL grid
// coordinates (all ends inclusive, matching core.CellGroup). The Parent
// extent is the global identity of the group the fragment belongs to: for a
// group contained entirely inside one band the fragment IS its own parent;
// for a group spanning a band border each shard contributes the slice it
// owns, all pointing at the same parent extent. The parent's top-left corner
// (ParentRowBegin, ParentColBegin) is the global group key — grid rectangles
// have unique top-left corners, so the key needs no coordination between
// shards.
type Fragment struct {
	Shard int

	RowBegin, RowEnd int
	ColBegin, ColEnd int

	ParentRowBegin, ParentRowEnd int
	ParentColBegin, ParentColEnd int

	Null       bool
	Features   []float64
	Generation int
}

// rows returns the number of rows the fragment covers.
func (f Fragment) rows() int { return f.RowEnd - f.RowBegin + 1 }

// cells returns the number of cells the fragment covers.
func (f Fragment) cells() int { return f.rows() * (f.ColEnd - f.ColBegin + 1) }

// StitchedGroup is one reassembled global cell-group.
type StitchedGroup struct {
	RowBegin, RowEnd int
	ColBegin, ColEnd int
	Null             bool
	Features         []float64
	Generation       int
	Shards           []int // contributing shards, ascending
}

// Cells returns the number of cells in the stitched group.
func (g StitchedGroup) Cells() int {
	return (g.RowEnd - g.RowBegin + 1) * (g.ColEnd - g.ColBegin + 1)
}

// DroppedGroup records a parent group the stitcher refused to assemble, and
// why. Dropping is always preferred over guessing: a stitched view never
// contains a group whose fragments disagreed (e.g. two generations of the
// same group) or only partially arrived.
type DroppedGroup struct {
	RowBegin int    `json:"row_begin"` // parent extent
	RowEnd   int    `json:"row_end"`
	ColBegin int    `json:"col_begin"`
	ColEnd   int    `json:"col_end"`
	Reason   string `json:"reason"`
	Shards   []int  `json:"shards"` // shards that contributed fragments
}

// StitchResult is the outcome of one Stitch call.
type StitchResult struct {
	Groups  []StitchedGroup
	Dropped []DroppedGroup
}

// Stitch reassembles global cell-groups from shard fragments. Fragments are
// grouped by their parent key (ParentRowBegin, ParentColBegin); each parent
// is accepted only when every fragment agrees on the full parent extent,
// null-ness, feature vector, and generation, and the fragments tile the
// parent's rows exactly (full parent column span, contiguous, no overlap, no
// gap). Anything else is dropped with a reason, never merged on a guess — in
// particular two shards serving different generations of a border-spanning
// group can never be mixed into one stitched group.
//
// Accepted groups come back sorted by (RowBegin, ColBegin). Because
// core.Extract discovers groups in row-major scan order — i.e. sorted by
// top-left corner — this ordering reproduces the unsharded view's group IDs
// exactly, which is what makes the stitched view byte-comparable to the
// single-process one.
func Stitch(rows, cols int, frags []Fragment) StitchResult {
	type key struct{ r, c int }
	byParent := make(map[key][]Fragment)
	order := make([]key, 0, len(frags))
	for _, f := range frags {
		k := key{f.ParentRowBegin, f.ParentColBegin}
		if _, seen := byParent[k]; !seen {
			order = append(order, k)
		}
		byParent[k] = append(byParent[k], f)
	}

	var res StitchResult
	for _, k := range order {
		group := byParent[k]
		sort.Slice(group, func(i, j int) bool { return group[i].RowBegin < group[j].RowBegin })
		first := group[0]
		shards := shardSet(group)
		drop := func(reason string) {
			res.Dropped = append(res.Dropped, DroppedGroup{
				RowBegin: first.ParentRowBegin, RowEnd: first.ParentRowEnd,
				ColBegin: first.ParentColBegin, ColEnd: first.ParentColEnd,
				Reason: reason, Shards: shards,
			})
		}
		if reason := validateParent(rows, cols, group); reason != "" {
			drop(reason)
			continue
		}
		res.Groups = append(res.Groups, StitchedGroup{
			RowBegin: first.ParentRowBegin, RowEnd: first.ParentRowEnd,
			ColBegin: first.ParentColBegin, ColEnd: first.ParentColEnd,
			Null:       first.Null,
			Features:   copyFloats(first.Features),
			Generation: first.Generation,
			Shards:     shards,
		})
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		a, b := res.Groups[i], res.Groups[j]
		if a.RowBegin != b.RowBegin {
			return a.RowBegin < b.RowBegin
		}
		return a.ColBegin < b.ColBegin
	})
	sort.Slice(res.Dropped, func(i, j int) bool {
		a, b := res.Dropped[i], res.Dropped[j]
		if a.RowBegin != b.RowBegin {
			return a.RowBegin < b.RowBegin
		}
		return a.ColBegin < b.ColBegin
	})
	return res
}

// validateParent checks one parent's fragments (sorted by RowBegin) and
// returns the drop reason, or "" when the parent stitches cleanly.
func validateParent(rows, cols int, group []Fragment) string {
	first := group[0]
	if first.ParentRowBegin < 0 || first.ParentRowEnd >= rows ||
		first.ParentColBegin < 0 || first.ParentColEnd >= cols ||
		first.ParentRowBegin > first.ParentRowEnd || first.ParentColBegin > first.ParentColEnd {
		return fmt.Sprintf("parent extent outside the %dx%d grid", rows, cols)
	}
	for _, f := range group[1:] {
		if f.ParentRowEnd != first.ParentRowEnd || f.ParentColEnd != first.ParentColEnd {
			return "parent-extent mismatch across fragments"
		}
		if f.Generation != first.Generation {
			return "generation mix across fragments"
		}
		if f.Null != first.Null {
			return "null-flag mismatch across fragments"
		}
		if !floatsEqual(f.Features, first.Features) {
			return "feature mismatch across fragments"
		}
	}
	prevEnd := first.ParentRowBegin - 1
	for _, f := range group {
		if f.ColBegin != first.ParentColBegin || f.ColEnd != first.ParentColEnd {
			return "fragment does not span the parent's columns"
		}
		if f.RowBegin < first.ParentRowBegin || f.RowEnd > first.ParentRowEnd || f.RowBegin > f.RowEnd {
			return "fragment outside the parent's rows"
		}
		if f.RowBegin <= prevEnd {
			return "overlapping fragments"
		}
		if f.RowBegin != prevEnd+1 {
			return "missing fragment (row gap)"
		}
		prevEnd = f.RowEnd
	}
	if prevEnd != first.ParentRowEnd {
		return "missing fragment (parent tail)"
	}
	return ""
}

// SplitGroups is the inverse of Stitch for a given plan: each group is cut at
// the plan's band borders into per-shard fragments that all carry the group's
// extent as their parent. Stitch(SplitGroups(plan, groups)) reproduces groups
// exactly — the round-trip identity the property tests pin down.
func SplitGroups(p Plan, groups []StitchedGroup) []Fragment {
	var out []Fragment
	for _, g := range groups {
		for _, b := range p.Bands {
			r0, r1 := maxInt(g.RowBegin, b.Row0), minInt(g.RowEnd, b.Row1-1)
			if r0 > r1 {
				continue
			}
			out = append(out, Fragment{
				Shard:    b.Index,
				RowBegin: r0, RowEnd: r1,
				ColBegin: g.ColBegin, ColEnd: g.ColEnd,
				ParentRowBegin: g.RowBegin, ParentRowEnd: g.RowEnd,
				ParentColBegin: g.ColBegin, ParentColEnd: g.ColEnd,
				Null:       g.Null,
				Features:   copyFloats(g.Features),
				Generation: g.Generation,
			})
		}
	}
	return out
}

// shardSet returns the ascending, de-duplicated shard indices of a fragment
// group.
func shardSet(group []Fragment) []int {
	seen := make(map[int]bool, len(group))
	out := make([]int, 0, len(group))
	for _, f := range group {
		if !seen[f.Shard] {
			seen[f.Shard] = true
			out = append(out, f.Shard)
		}
	}
	sort.Ints(out)
	return out
}

// floatsEqual reports bitwise equality of two feature vectors. Exact
// comparison is deliberate: fragments of one group carry literal copies of
// the same shard-computed vector, so any difference at all means the
// fragments came from different computations and must not be merged.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func copyFloats(v []float64) []float64 {
	if v == nil {
		return nil
	}
	return append([]float64(nil), v...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
