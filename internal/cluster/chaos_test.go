package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialrepart/internal/fault"
	"spatialrepart/internal/grid"
	"spatialrepart/internal/obs"
	"spatialrepart/internal/server"
	"spatialrepart/internal/stream"
	"spatialrepart/internal/wal"
)

// fakeClock is the chaos suite's injected time source: Now is manual, and
// After auto-advances — a requested wait "elapses" immediately and
// deterministically, so retry backoffs and hedge delays never consume real
// wall-clock time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

// killableShard keeps one stable URL while its backing handler can be killed
// (connections abort mid-flight, like a SIGKILLed process behind a stable
// address) and later replaced by a restored instance.
type killableShard struct {
	ts       *httptest.Server
	handler  atomic.Pointer[http.Handler]
	down     atomic.Bool
	requests atomic.Int64 // requests that reached the shard, up or down
	downHits atomic.Int64 // requests aborted because the shard was down
}

func newKillableShard(h http.Handler) *killableShard {
	ks := &killableShard{}
	ks.handler.Store(&h)
	ks.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ks.requests.Add(1)
		if ks.down.Load() {
			ks.downHits.Add(1)
			panic(http.ErrAbortHandler) // abort the connection: a transport-level failure
		}
		(*ks.handler.Load()).ServeHTTP(w, r)
	}))
	return ks
}

func (ks *killableShard) kill()                 { ks.down.Store(true) }
func (ks *killableShard) revive(h http.Handler) { ks.handler.Store(&h); ks.down.Store(false) }
func (ks *killableShard) Close()                { ks.ts.Close() }

// TestChaosKillDegradeRejoinReconverge is the full kill/rejoin arc:
//
//  1. healthy two-shard cluster — shard 1 WAL-backed — with a checkpoint
//     taken MID-INGEST, so the records acked after it exist only in the WAL;
//     baseline stitched view captured after all ingest
//  2. shard 1 killed under load (SIGKILL semantics: the old process image is
//     abandoned, nothing flushed)
//  3. the cluster keeps serving 200 + Warning with shard 1 explicitly
//     missing; the breaker opens after exactly 1+RetryMax transport failures
//     and later fetches are refused locally (no new requests reach the dead
//     shard); /readyz stays ready-but-degraded
//  4. exact counter reconciliation: requests that reached the dead shard ==
//     breaker failures == the cluster.backend.failures counter == /stats
//     fetch_failures; the refusals match round-for-round
//  5. shard 1 is rebuilt from checkpoint + WAL replay behind the same URL —
//     ZERO acked-record loss, not just "back to the checkpoint" — the
//     breaker's backoff window passes (fake clock), and the stitched view
//     reconverges BYTE-IDENTICALLY to the baseline cell-groups.
func TestChaosKillDegradeRejoinReconverge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p, err := NewPlan(10, 6, testBounds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(rng, testBounds(), 700)

	walDir := t.TempDir()
	wlog, err := wal.Open(walDir, wal.Options{SegmentBytes: 4096, Stamp: "chaos shard=1/2"})
	if err != nil {
		t.Fatal(err)
	}

	streams := make([]*stream.Repartitioner, 2)
	shards := make([]*killableShard, 2)
	backends := make([]string, 2)
	for i := range streams {
		opts := stream.Options{Threshold: 0.5, MinRecordsBetweenChecks: 1}
		if i == 1 {
			opts.WAL = wlog
		}
		streams[i], err = NewShard(p, i, testAttrs(), opts)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(server.Config{Source: streams[i]})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = newKillableShard(srv.Handler())
		defer shards[i].Close()
		backends[i] = shards[i].ts.URL
	}
	// Route the feed; shard 1's records are fed in two phases around a
	// checkpoint so a real WAL suffix exists when the kill comes.
	var shard1Recs []grid.Record
	for _, rec := range recs {
		shard, local, ok := p.Route(rec)
		if !ok {
			continue
		}
		if shard == 1 {
			shard1Recs = append(shard1Recs, local)
			continue
		}
		if err := streams[shard].Add(local); err != nil {
			t.Fatal(err)
		}
	}
	half := len(shard1Recs) / 2
	for _, rec := range shard1Recs[:half] {
		if err := streams[1].Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	coveredSeq, err := streams[1].CheckpointSeq(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if coveredSeq != uint64(half) {
		t.Fatalf("checkpoint covers WAL seq %d, want %d", coveredSeq, half)
	}
	// Checkpoint-coordinated truncation: the pre-checkpoint segments go; the
	// post-checkpoint records below exist ONLY in the WAL suffix.
	if err := wlog.TruncateThrough(coveredSeq); err != nil {
		t.Fatal(err)
	}
	for _, rec := range shard1Recs[half:] {
		if err := streams[1].Add(rec); err != nil {
			t.Fatal(err)
		}
	}

	clock := newFakeClock()
	obsv := obs.New()
	// A dedicated client so the test can drop idle keep-alive connections
	// before the kill: Go's transport silently re-issues an idempotent GET
	// whose REUSED connection died, which would smear the exact
	// one-request-per-attempt accounting this test reconciles.
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()
	coord, err := New(Config{
		Plan: p, Backends: backends,
		Client:           client,
		Clock:            clock,
		Obs:              obsv,
		RetryMax:         2,
		FailureThreshold: 3,
		InitialBackoff:   100 * time.Millisecond,
		MaxBackoff:       time.Second,
		JitterSeed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownCoordinator(t, coord)
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	// ---- 1. healthy baseline ----
	resp, body := getBody(t, front.URL+"/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("baseline: status %d warning %q", resp.StatusCode, resp.Header.Get("Warning"))
	}
	var baseline ViewBody
	if err := json.Unmarshal(body, &baseline); err != nil {
		t.Fatal(err)
	}
	baselineGroups, _ := json.Marshal(baseline.CellGroups)

	// ---- 2. kill shard 1 ----
	// SIGKILL semantics: the live Log and Repartitioner are simply abandoned
	// — no Close, no final sync. Everything acked is already durable (the
	// default sync policy fsyncs per append).
	preKillRequests := shards[1].requests.Load()
	client.CloseIdleConnections()
	shards[1].kill()

	// ---- 3. degraded-but-serving under load ----
	var degraded ViewBody
	for i := 0; i < 5; i++ {
		resp, body = getBody(t, front.URL+"/view")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("kill round %d: status %d: %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Warning") == "" {
			t.Fatalf("kill round %d: degraded response without Warning header", i)
		}
		if err := json.Unmarshal(body, &degraded); err != nil {
			t.Fatal(err)
		}
		if !degraded.Degraded || len(degraded.MissingShards) != 1 || degraded.MissingShards[0] != 1 {
			t.Fatalf("kill round %d: degraded=%t missing=%v", i, degraded.Degraded, degraded.MissingShards)
		}
	}
	// Bounded staleness: everything shard 0 owns is still served fresh — the
	// hole is exactly shard 1's band, never a stale mix of generations.
	band0 := p.Bands[0]
	want0 := 0
	for _, g := range baseline.CellGroups {
		if g.RowEnd < band0.Row1 {
			want0++
		}
	}
	if len(degraded.CellGroups) != want0 {
		t.Fatalf("degraded view has %d groups, want shard 0's %d", len(degraded.CellGroups), want0)
	}
	for _, g := range degraded.CellGroups {
		if g.RowEnd >= band0.Row1 {
			t.Fatalf("degraded view contains a group from the dead shard: %+v", g)
		}
	}

	// ---- 4. exact counter reconciliation ----
	// The first degraded /view burns the full retry budget (1+RetryMax = 3
	// transport failures) and opens the breaker exactly at
	// FailureThreshold=3; each of the 4 later /view rounds is refused
	// locally without touching the wire.
	downHits := shards[1].downHits.Load()
	if downHits != 3 {
		t.Fatalf("dead shard absorbed %d requests, want exactly 3 (then the breaker opened)", downHits)
	}
	reg := obsv.Registry()
	if got := reg.Counter(obs.FoldLabels("cluster.backend.failures", []string{"1"})).Value(); got != downHits {
		t.Fatalf("cluster.backend.failures|1 = %d, shard absorbed %d", got, downHits)
	}
	if got := reg.Counter(obs.FoldLabels("cluster.backend.refused", []string{"1"})).Value(); got != 4 {
		t.Fatalf("cluster.backend.refused|1 = %d, want 4", got)
	}
	if got := reg.Gauge(obs.FoldLabels("cluster.backend.breaker", []string{"1"})).Value(); got != float64(1) {
		t.Fatalf("breaker gauge = %v, want 1 (open)", got)
	}
	_, statsBody := getBody(t, front.URL+"/stats")
	var sb StatsBody
	if err := json.Unmarshal(statsBody, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Shards[1].Breaker != "open" || sb.Shards[1].Failures != int(downHits) || sb.Shards[1].Opens != 1 {
		t.Fatalf("/stats shard 1 = %+v, want open / 3 failures / 1 open-transition", sb.Shards[1])
	}
	if len(sb.MissingShards) != 1 || sb.MissingShards[0] != 1 {
		t.Fatalf("/stats missing = %v, want [1]", sb.MissingShards)
	}

	// /readyz: ready but degraded with one shard down (probes bypass the
	// breaker, so this touches the dead shard once).
	resp, body = getBody(t, front.URL+"/readyz")
	var rb ReadyBody
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rb.Ready || !rb.Degraded {
		t.Fatalf("/readyz with one dead shard: status %d body %+v", resp.StatusCode, rb)
	}

	// ---- 5. checkpoint + WAL-replay rejoin, byte-identical reconvergence ----
	// The restored process opens the same WAL dir (same stamp), restores the
	// mid-ingest checkpoint, and replays the suffix: every record acked after
	// the checkpoint comes back. Without the replay the baseline comparison
	// below would fail — the second half of shard 1's feed is nowhere else.
	wlog2, err := wal.Open(walDir, wal.Options{SegmentBytes: 4096, Stamp: "chaos shard=1/2"})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	restored, err := NewShard(p, 1, testAttrs(), stream.Options{Threshold: 0.5, MinRecordsBetweenChecks: 1, WAL: wlog2})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	replayed, err := restored.ReplayWAL()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(shard1Recs) - half; replayed != want {
		t.Fatalf("replayed %d records, want the %d acked after the checkpoint", replayed, want)
	}
	if st := restored.Stats(); st.WALSeq != uint64(len(shard1Recs)) || st.Accepted != len(shard1Recs) {
		t.Fatalf("zero acked-record loss violated: WALSeq=%d Accepted=%d, want both %d",
			st.WALSeq, st.Accepted, len(shard1Recs))
	}
	srv, err := server.New(server.Config{Source: restored})
	if err != nil {
		t.Fatal(err)
	}
	shards[1].revive(srv.Handler())

	// The open breaker refuses until its (jittered, capped) backoff deadline
	// passes; advance the injected clock far beyond the 1s cap and the next
	// fetch is the half-open probe.
	clock.Advance(10 * time.Second)
	resp, body = getBody(t, front.URL+"/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("rejoined: status %d warning %q: %s", resp.StatusCode, resp.Header.Get("Warning"), body)
	}
	var rejoined ViewBody
	if err := json.Unmarshal(body, &rejoined); err != nil {
		t.Fatal(err)
	}
	if rejoined.Degraded || len(rejoined.MissingShards) != 0 {
		t.Fatalf("rejoined view still degraded: %+v", rejoined)
	}
	rejoinedGroups, _ := json.Marshal(rejoined.CellGroups)
	if !bytes.Equal(rejoinedGroups, baselineGroups) {
		t.Fatalf("rejoin did not reconverge byte-identically:\nbaseline: %s\nrejoined: %s", baselineGroups, rejoinedGroups)
	}
	if rejoined.IFL != baseline.IFL || rejoined.Groups != baseline.Groups || rejoined.ValidGroups != baseline.ValidGroups {
		t.Fatalf("rejoin summary drifted: ifl %v→%v groups %d→%d", baseline.IFL, rejoined.IFL, baseline.Groups, rejoined.Groups)
	}
	if got := shards[1].requests.Load(); got <= preKillRequests+downHits {
		t.Fatal("restored shard never served a request")
	}
	// The half-open probe's success closed the breaker again.
	if got := reg.Gauge(obs.FoldLabels("cluster.backend.breaker", []string{"1"})).Value(); got != 0 {
		t.Fatalf("breaker gauge after rejoin = %v, want 0 (closed)", got)
	}
}

// TestChaosInjectedFetchFaultsReconcile drives the cluster.fetch fault point
// with an exact-count plan and reconciles injector hits against breaker and
// counter state: K injected failures → K recorded failures and K retries,
// and the client never sees an error.
func TestChaosInjectedFetchFaultsReconcile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	recs := testRecords(rng, testBounds(), 200)
	clock := newFakeClock()
	obsv := obs.New()
	inj := fault.New(1)
	inj.Set("cluster.fetch", fault.Plan{Count: 2, Err: errors.New("injected shard fault")})

	tc := startCluster(t, 6, 6, 1, recs, func(cfg *Config) {
		cfg.Clock = clock
		cfg.Obs = obsv
		cfg.Fault = inj
		cfg.RetryMax = 2
		cfg.FailureThreshold = 3
	}, nil)

	resp, body := getBody(t, tc.front.URL+"/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("retries should have absorbed 2 injected faults: status %d warning %q",
			resp.StatusCode, resp.Header.Get("Warning"))
	}
	var cv ViewBody
	if err := json.Unmarshal(body, &cv); err != nil {
		t.Fatal(err)
	}
	if cv.Degraded || len(cv.MissingShards) != 0 {
		t.Fatalf("view degraded despite successful retry: %+v", cv)
	}

	hits, fired := inj.Stats("cluster.fetch")
	if hits != 3 || fired != 2 {
		t.Fatalf("injector hits=%d fired=%d, want 3/2 (two faults + the succeeding attempt)", hits, fired)
	}
	reg := obsv.Registry()
	if got := reg.Counter(obs.FoldLabels("cluster.backend.failures", []string{"0"})).Value(); got != fired {
		t.Fatalf("cluster.backend.failures|0 = %d, injector fired %d", got, fired)
	}
	if got := reg.Counter(obs.FoldLabels("cluster.backend.retries", []string{"0"})).Value(); got != 2 {
		t.Fatalf("cluster.backend.retries|0 = %d, want 2", got)
	}
	if got := reg.Gauge(obs.FoldLabels("cluster.backend.breaker", []string{"0"})).Value(); got != 0 {
		t.Fatalf("breaker gauge = %v, want 0 (closed; the streak never reached the threshold)", got)
	}
}

// TestChaosAllShardsDown: a fully dark cluster is the one case that turns
// into 503s — /view refuses with not_ready and /readyz flips not-ready.
func TestChaosAllShardsDown(t *testing.T) {
	p, err := NewPlan(4, 4, testBounds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	dead := []*killableShard{newKillableShard(http.NotFoundHandler()), newKillableShard(http.NotFoundHandler())}
	for _, d := range dead {
		d.kill()
		defer d.Close()
	}
	clock := newFakeClock()
	coord, err := New(Config{
		Plan: p, Backends: []string{dead[0].ts.URL, dead[1].ts.URL},
		Clock: clock, RetryMax: 1, FailureThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownCoordinator(t, coord)
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	resp, body := getBody(t, front.URL+"/view")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/view with all shards down: status %d: %s", resp.StatusCode, body)
	}
	var eb struct {
		Code string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "not_ready" {
		t.Fatalf("/view error body %s (parse err %v), want not_ready", body, err)
	}

	resp, body = getBody(t, front.URL+"/readyz")
	var rb ReadyBody
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rb.Ready || rb.Reason != "no shard ready" {
		t.Fatalf("/readyz with all shards down: status %d body %+v", resp.StatusCode, rb)
	}
}

// TestChaosHedgedRequestWins: once the latency ring is primed, a stalled
// primary request is raced by a hedge after the p99 delay, and the hedge's
// answer serves the response — no retry, no recorded failure, no
// client-visible stall.
func TestChaosHedgedRequestWins(t *testing.T) {
	p, err := NewPlan(4, 4, testBounds(), 1)
	if err != nil {
		t.Fatal(err)
	}
	viewJSON := `{"generation":1,"degraded":false,"rows":4,"cols":4,"groups":1,"valid_groups":1,"ifl":0.25,` +
		`"cell_groups":[{"id":0,"row_begin":0,"row_end":3,"col_begin":0,"col_end":3,"cells":16,"features":[1]}]}`
	var hangNext atomic.Bool
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hangNext.CompareAndSwap(true, false) {
			// Stall until the coordinator abandons this leg (the hedge won
			// and the attempt context was cancelled).
			<-r.Context().Done()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, viewJSON+"\n")
	}))
	defer backend.Close()

	clock := newFakeClock()
	obsv := obs.New()
	coord, err := New(Config{
		Plan: p, Backends: []string{backend.URL},
		Clock: clock, Obs: obsv,
		Hedge: true, HedgeMinSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownCoordinator(t, coord)
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	// Prime the latency ring past HedgeMinSamples.
	for i := 0; i < 3; i++ {
		resp, _ := getBody(t, front.URL+"/view")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("prime %d: status %d", i, resp.StatusCode)
		}
	}
	// The hang trap catches whichever leg reaches the backend first. That is
	// almost always the primary (the hedge launches strictly later), but the
	// race is real — if a round's hedge lost the dash and got trapped, the
	// primary won and the round proves nothing; run another. Every round must
	// answer 200 regardless of which leg was stalled.
	reg := obsv.Registry()
	hedgeWins := reg.Counter(obs.FoldLabels("cluster.backend.hedge_wins", []string{"0"}))
	for i := 0; i < 20 && hedgeWins.Value() == 0; i++ {
		hangNext.Store(true)
		resp, body := getBody(t, front.URL+"/view")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stall round %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got := reg.Counter(obs.FoldLabels("cluster.backend.hedges", []string{"0"})).Value(); got < 1 {
		t.Fatalf("no hedge was launched (hedges=%d)", got)
	}
	if hedgeWins.Value() < 1 {
		t.Fatalf("hedge never won in 20 stalled rounds (hedge_wins=%d)", hedgeWins.Value())
	}
	if got := reg.Counter(obs.FoldLabels("cluster.backend.failures", []string{"0"})).Value(); got != 0 {
		t.Fatalf("hedged stall recorded %d failures, want 0", got)
	}
}

// TestChaosRequestFaultPoint: an injected fault at cluster.request surfaces
// as a clean taxonomy error on that one request and nothing else.
func TestChaosRequestFaultPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inj := fault.New(2)
	inj.Set("cluster.request", fault.Plan{Count: 1, Err: server.ErrInternal.WithDetail("injected")})
	tc := startCluster(t, 4, 4, 1, testRecords(rng, testBounds(), 60), func(cfg *Config) {
		cfg.Fault = inj
	}, nil)

	resp, body := getBody(t, tc.front.URL+"/view")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = getBody(t, tc.front.URL+"/view")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after the fault window: status %d", resp.StatusCode)
	}
	if hits, fired := inj.Stats("cluster.request"); fired != 1 || hits != 2 {
		t.Fatalf("injector hits=%d fired=%d, want 2/1", hits, fired)
	}
}
