package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"spatialrepart/internal/breaker"
	"spatialrepart/internal/obs"
)

// errShardRefused marks a fetch refused locally by the backend's open
// breaker — the shard was never contacted.
var errShardRefused = errors.New("cluster: backend circuit breaker open")

// maxShardBody caps how much of a shard response the coordinator will buffer
// (16 MiB — far above any real /view, pure defense against a confused or
// hostile backend).
const maxShardBody = 16 << 20

// latRingSize is the per-backend latency reservoir size. 128 successful
// samples are plenty for a p99 hedge threshold while keeping the sort cheap.
const latRingSize = 128

// backend is the coordinator's per-shard client state: the base URL, the
// circuit breaker, and the success-latency ring behind the hedge delay. All
// mutable state is guarded by mu — the breaker itself is not self-locking.
type backend struct {
	index int
	base  string

	mu      sync.Mutex
	brk     *breaker.Breaker
	lat     [latRingSize]time.Duration
	latN    int // total samples ever recorded
	latPos  int
	fails   int // attempts recorded as breaker failures (chaos reconciliation)
	refused int // fetches refused by the open breaker
}

// recordLatency folds one successful round-trip duration into the ring.
func (b *backend) recordLatency(d time.Duration) {
	b.mu.Lock()
	b.lat[b.latPos] = d
	b.latPos = (b.latPos + 1) % latRingSize
	b.latN++
	b.mu.Unlock()
}

// hedgeDelay returns the p99 of the recorded success latencies, and whether
// enough samples exist (min) to hedge at all. Hedging off a handful of
// samples would fire spurious duplicate reads on a cold cluster.
func (b *backend) hedgeDelay(min int) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.latN
	if n > latRingSize {
		n = latRingSize
	}
	if n < min || n == 0 {
		return 0, false
	}
	samples := make([]time.Duration, n)
	copy(samples, b.lat[:n])
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (n*99 + 99) / 100
	if idx > 0 {
		idx--
	}
	return samples[idx], true
}

// fetchResult is one shard response: status and body, verbatim.
type fetchResult struct {
	Status int
	Body   []byte
}

// outcome is one round-trip's result on the hedge channel.
type outcome struct {
	res     fetchResult
	err     error
	hedged  bool
	elapsed time.Duration
}

// fetch performs one defended idempotent read against a backend: breaker
// admission, up to 1+RetryMax attempts with the breaker's capped jittered
// backoff between them, per-attempt shard deadline, and optional hedging
// (attempt launches a duplicate request after the backend's p99 delay and
// takes whichever answers first). 4xx statuses are successes to the breaker
// — the shard answered; only transport errors and 5xx count as failures.
func (c *Coordinator) fetch(ctx context.Context, b *backend, pq string) (fetchResult, error) {
	ctx, sp := c.obs.StartSpanCtx(ctx, "cluster.fetch", "backend", strconv.Itoa(b.index), "path", pq)
	defer sp.End()
	label := strconv.Itoa(b.index)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryMax; attempt++ {
		now := c.clock.Now()
		b.mu.Lock()
		allowed := b.brk.Allow(now)
		if !allowed {
			b.refused++
		}
		state := b.brk.State()
		b.mu.Unlock()
		c.gaugeBreaker(b, state)
		if !allowed {
			c.count("cluster.backend.refused", label)
			if lastErr != nil {
				return fetchResult{}, lastErr
			}
			return fetchResult{}, fmt.Errorf("%w (shard %d)", errShardRefused, b.index)
		}
		if attempt > 0 {
			c.count("cluster.backend.retries", label)
		}

		res, elapsed, err := c.attempt(ctx, b, pq)
		if err == nil && res.Status < 500 {
			b.mu.Lock()
			b.brk.Success()
			b.mu.Unlock()
			b.recordLatency(elapsed)
			c.gaugeBreaker(b, breaker.Closed)
			c.count("cluster.backend.success", label)
			return res, nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: shard %d returned status %d", b.index, res.Status)
		}
		lastErr = err
		failedAt := c.clock.Now()
		b.mu.Lock()
		b.brk.Failure(failedAt)
		b.fails++
		state = b.brk.State()
		retryAt := b.brk.RetryAt()
		b.mu.Unlock()
		c.count("cluster.backend.failures", label)
		c.gaugeBreaker(b, state)
		if state == breaker.Open || attempt == c.cfg.RetryMax || ctx.Err() != nil {
			break
		}
		// Honor the breaker's jittered backoff window before the next
		// attempt — Allow would refuse an immediate retry anyway, and the
		// shared jitter stream is what de-synchronizes a fleet of
		// coordinators hammering the same recovering shard.
		if wait := retryAt.Sub(failedAt); wait > 0 {
			select {
			case <-c.clock.After(wait):
			case <-ctx.Done():
				return fetchResult{}, fmt.Errorf("cluster: shard %d: %w (last error: %v)", b.index, ctx.Err(), lastErr)
			}
		}
	}
	return fetchResult{}, lastErr
}

// attempt performs one (possibly hedged) round trip within the shard
// deadline. The result channel is buffered for both racers, so the losing
// goroutine always completes its send and exits — nothing leaks even when
// the caller has long moved on.
func (c *Coordinator) attempt(ctx context.Context, b *backend, pq string) (fetchResult, time.Duration, error) {
	if ferr := c.flt.Hit("cluster.fetch"); ferr != nil {
		return fetchResult{}, 0, fmt.Errorf("cluster: shard %d: %w", b.index, ferr)
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()

	ch := make(chan outcome, 2)
	do := func(hedged bool) {
		start := c.clock.Now()
		res, err := c.roundTrip(actx, b, pq)
		ch <- outcome{res: res, err: err, hedged: hedged, elapsed: c.clock.Now().Sub(start)}
	}
	go do(false)

	var hedgeTimer <-chan time.Time
	if c.cfg.Hedge {
		if d, ok := b.hedgeDelay(c.cfg.HedgeMinSamples); ok {
			hedgeTimer = c.clock.After(d)
		}
	}

	pending := 1
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.hedged {
					c.count("cluster.backend.hedge_wins", strconv.Itoa(b.index))
				}
				return out.res, out.elapsed, nil
			}
			if pending == 0 {
				return fetchResult{}, 0, out.err
			}
			// The other racer is still in flight; its answer may yet save
			// the attempt.
		case <-hedgeTimer:
			hedgeTimer = nil
			c.count("cluster.backend.hedges", strconv.Itoa(b.index))
			pending++
			go do(true)
		}
	}
}

// roundTrip is one plain HTTP GET against the backend, with the inbound
// trace context forwarded as a traceparent header so shard spans link into
// the coordinator's request trace.
func (c *Coordinator) roundTrip(ctx context.Context, b *backend, pq string) (fetchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+pq, nil)
	if err != nil {
		return fetchResult{}, fmt.Errorf("cluster: building request for shard %d: %w", b.index, err)
	}
	if tc, ok := obs.TraceFromContext(ctx); ok {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fetchResult{}, fmt.Errorf("cluster: shard %d: %w", b.index, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return fetchResult{}, fmt.Errorf("cluster: reading shard %d response: %w", b.index, err)
	}
	return fetchResult{Status: resp.StatusCode, Body: body}, nil
}

// count bumps a per-backend counter (cluster.<name>|<backend>).
func (c *Coordinator) count(name, backendLabel string) {
	if c.obs.Enabled() {
		c.obs.Count(obs.FoldLabels(name, []string{backendLabel}), 1)
	}
}

// gaugeBreaker exports a backend's breaker state as a numeric gauge
// (0 closed, 1 open, 2 half-open — matching breaker.State).
func (c *Coordinator) gaugeBreaker(b *backend, s breaker.State) {
	if c.obs.Enabled() {
		c.obs.SetGauge(obs.FoldLabels("cluster.backend.breaker", []string{strconv.Itoa(b.index)}), float64(s))
	}
}
