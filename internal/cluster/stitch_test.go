package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"spatialrepart/internal/grid"
)

func testBounds() grid.Bounds {
	return grid.Bounds{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1}
}

func TestNewPlanGeometry(t *testing.T) {
	p, err := NewPlan(10, 4, testBounds(), 3)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []int{4, 3, 3} // 10 rows over 3 bands: first gets the extra
	row := 0
	for i, b := range p.Bands {
		if b.Index != i || b.Row0 != row || b.Rows() != wantRows[i] {
			t.Fatalf("band %d = %+v, want Row0=%d rows=%d", i, b, row, wantRows[i])
		}
		row = b.Row1
	}
	if row != 10 {
		t.Fatalf("bands cover %d rows, want 10", row)
	}
	if p.Bands[0].Bounds.MinLat != 0 || p.Bands[2].Bounds.MaxLat != 1 {
		t.Fatalf("outer band bounds not exact: %+v / %+v", p.Bands[0].Bounds, p.Bands[2].Bounds)
	}
	for i := 1; i < len(p.Bands); i++ {
		if p.Bands[i].Bounds.MinLat != p.Bands[i-1].Bounds.MaxLat {
			t.Fatalf("band %d lat cut %v != band %d top %v",
				i, p.Bands[i].Bounds.MinLat, i-1, p.Bands[i-1].Bounds.MaxLat)
		}
	}

	for _, bad := range []struct{ rows, cols, shards int }{
		{0, 4, 1}, {10, 0, 1}, {10, 4, 0}, {10, 4, 11},
	} {
		if _, err := NewPlan(bad.rows, bad.cols, testBounds(), bad.shards); err == nil {
			t.Fatalf("NewPlan(%+v) accepted", bad)
		}
	}
}

func TestShardForCoversGrid(t *testing.T) {
	p, err := NewPlan(17, 3, testBounds(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p.Rows; r++ {
		s := p.ShardFor(r)
		if s < 0 || r < p.Bands[s].Row0 || r >= p.Bands[s].Row1 {
			t.Fatalf("row %d routed to shard %d owning [%d,%d)", r, s, p.Bands[s].Row0, p.Bands[s].Row1)
		}
	}
	if p.ShardFor(-1) != -1 || p.ShardFor(17) != -1 {
		t.Fatal("out-of-grid rows routed to a shard")
	}
}

// TestRouteAgreesWithGlobalCell is the ingest-consistency property: for any
// in-bounds record, the shard-local cell of the routed record equals the
// global cell minus the band offset — including records sitting exactly on
// band-edge latitudes.
func TestRouteAgreesWithGlobalCell(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{1, 2, 4} {
		p, err := NewPlan(13, 5, grid.Bounds{MinLat: -3, MaxLat: 9, MinLon: 2, MaxLon: 4}, shards)
		if err != nil {
			t.Fatal(err)
		}
		check := func(lat, lon float64) {
			rec := grid.Record{Lat: lat, Lon: lon, Values: []float64{1}}
			gr, gc, ok := p.Bounds.CellOf(lat, lon, p.Rows, p.Cols)
			shard, local, rok := p.Route(rec)
			if ok != rok {
				t.Fatalf("Route ok=%t but CellOf ok=%t for (%v,%v)", rok, ok, lat, lon)
			}
			if !ok {
				return
			}
			if want := p.ShardFor(gr); shard != want {
				t.Fatalf("record (%v,%v) routed to shard %d, want %d", lat, lon, shard, want)
			}
			b := p.Bands[shard]
			lr, lc, lok := b.Bounds.CellOf(local.Lat, local.Lon, b.Rows(), p.Cols)
			if !lok || lr != gr-b.Row0 || lc != gc {
				t.Fatalf("record (%v,%v): global cell (%d,%d), local cell (%d,%d,ok=%t), band Row0=%d",
					lat, lon, gr, gc, lr, lc, lok, b.Row0)
			}
		}
		for i := 0; i < 2000; i++ {
			check(-3+12*rng.Float64(), 2+2*rng.Float64())
		}
		// Exactly on every band-edge latitude, plus the global edges.
		for _, b := range p.Bands {
			check(b.Bounds.MinLat, 3)
			check(b.Bounds.MaxLat, 3)
		}
		check(-3, 2)
		check(9, 4) // max corner: CellOf clamps onto the last cell
	}
}

// randomGroups builds a valid random row-partitioned set of stitched groups:
// the grid's rows are cut into horizontal slabs, each slab's columns into
// rectangles. Rectangles spanning several bands are exactly the interesting
// case for SplitGroups/Stitch.
func randomGroups(rng *rand.Rand, rows, cols int) []StitchedGroup {
	var groups []StitchedGroup
	r := 0
	for r < rows {
		h := 1 + rng.Intn(rows-r)
		c := 0
		for c < cols {
			w := 1 + rng.Intn(cols-c)
			g := StitchedGroup{
				RowBegin: r, RowEnd: r + h - 1,
				ColBegin: c, ColEnd: c + w - 1,
				Generation: 1 + rng.Intn(3),
			}
			if rng.Intn(5) == 0 {
				g.Null = true
			} else {
				g.Features = []float64{rng.Float64(), rng.NormFloat64()}
			}
			groups = append(groups, g)
			c += w
		}
		r += h
	}
	return groups
}

// TestSplitStitchRoundTrip is the stitcher's core property:
// Stitch(SplitGroups(plan, groups)) == groups for arbitrary groups and band
// layouts, regardless of fragment arrival order.
func TestSplitStitchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		rows := 2 + rng.Intn(14)
		cols := 1 + rng.Intn(8)
		shards := 1 + rng.Intn(minInt(4, rows))
		p, err := NewPlan(rows, cols, testBounds(), shards)
		if err != nil {
			t.Fatal(err)
		}
		groups := randomGroups(rng, rows, cols)
		frags := SplitGroups(p, groups)
		rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })

		res := Stitch(rows, cols, frags)
		if len(res.Dropped) != 0 {
			t.Fatalf("iter %d: round trip dropped %d groups: %+v", iter, len(res.Dropped), res.Dropped)
		}
		if len(res.Groups) != len(groups) {
			t.Fatalf("iter %d: %d stitched groups, want %d", iter, len(res.Groups), len(groups))
		}
		// The stitched output is sorted by (RowBegin, ColBegin); so is the
		// generator's emission order.
		for i := range groups {
			got, want := res.Groups[i], groups[i]
			got.Shards = nil // round-trip identity is about the group content
			want.Shards = nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: group %d = %+v, want %+v", iter, i, got, want)
			}
		}
	}
}

func TestStitchDropsGenerationMix(t *testing.T) {
	p, err := NewPlan(4, 2, testBounds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	groups := []StitchedGroup{{
		RowBegin: 0, RowEnd: 3, ColBegin: 0, ColEnd: 1,
		Features: []float64{1.5}, Generation: 1,
	}}
	frags := SplitGroups(p, groups)
	frags[1].Generation = 2 // shard 1 serves a newer generation of the same group

	res := Stitch(4, 2, frags)
	if len(res.Groups) != 0 {
		t.Fatalf("generation-mixed group was stitched: %+v", res.Groups)
	}
	if len(res.Dropped) != 1 || res.Dropped[0].Reason != "generation mix across fragments" {
		t.Fatalf("dropped = %+v, want one generation-mix drop", res.Dropped)
	}
	if !reflect.DeepEqual(res.Dropped[0].Shards, []int{0, 1}) {
		t.Fatalf("dropped shards = %v, want [0 1]", res.Dropped[0].Shards)
	}
}

func TestStitchDropsIncompleteAndMalformed(t *testing.T) {
	p, err := NewPlan(6, 2, testBounds(), 3)
	if err != nil {
		t.Fatal(err)
	}
	whole := []StitchedGroup{{RowBegin: 0, RowEnd: 5, ColBegin: 0, ColEnd: 1, Features: []float64{2}, Generation: 1}}

	cases := []struct {
		name    string
		mutate  func([]Fragment) []Fragment
		reasons []string
	}{
		{"missing middle fragment", func(f []Fragment) []Fragment {
			return []Fragment{f[0], f[2]}
		}, []string{"missing fragment (row gap)"}},
		{"missing tail fragment", func(f []Fragment) []Fragment {
			return f[:2]
		}, []string{"missing fragment (parent tail)"}},
		{"overlapping fragments", func(f []Fragment) []Fragment {
			f[1].RowBegin = f[0].RowEnd // one-row overlap
			return f
		}, []string{"overlapping fragments"}},
		{"feature mismatch", func(f []Fragment) []Fragment {
			f[2].Features = []float64{2.0000001}
			return f
		}, []string{"feature mismatch across fragments"}},
		{"null mismatch", func(f []Fragment) []Fragment {
			f[0].Null = true
			return f
		}, []string{"null-flag mismatch across fragments"}},
		{"parent extent mismatch", func(f []Fragment) []Fragment {
			f[1].ParentRowEnd = 4
			return f
		}, []string{"parent-extent mismatch across fragments"}},
		{"narrow fragment", func(f []Fragment) []Fragment {
			f[1].ColEnd = 0
			return f
		}, []string{"fragment does not span the parent's columns"}},
		{"parent outside grid", func(f []Fragment) []Fragment {
			for i := range f {
				f[i].ParentRowEnd = 6
			}
			return f
		}, []string{"parent extent outside the 6x2 grid"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frags := tc.mutate(SplitGroups(p, whole))
			res := Stitch(6, 2, frags)
			if len(res.Groups) != 0 {
				t.Fatalf("malformed group was stitched: %+v", res.Groups)
			}
			if len(res.Dropped) != 1 || res.Dropped[0].Reason != tc.reasons[0] {
				t.Fatalf("dropped = %+v, want reason %q", res.Dropped, tc.reasons[0])
			}
		})
	}
}
