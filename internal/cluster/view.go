package cluster

import (
	"sort"

	"spatialrepart/internal/server"
	"spatialrepart/internal/stream"
)

// ShardView is one shard's decoded contribution to a stitched view: its
// serving metadata plus its cell-groups as global-coordinate fragments. The
// coordinator builds these from shard /view responses; the in-process test
// reference builds them straight from stream views — both through the same
// projection, so the two paths cannot drift.
type ShardView struct {
	Shard      int
	Generation int
	Degraded   bool
	IFL        float64
	Fragments  []Fragment
}

// ValidCells returns the number of valid (non-null-group) cells the shard
// contributed — the shard's weight in the stitched IFL.
func (v ShardView) ValidCells() int {
	n := 0
	for _, f := range v.Fragments {
		if !f.Null {
			n += f.cells()
		}
	}
	return n
}

// ShardMeta is the per-shard serving metadata of a stitched view response.
type ShardMeta struct {
	Shard      int     `json:"shard"`
	RowBegin   int     `json:"row_begin"` // global rows [RowBegin, RowEnd] owned
	RowEnd     int     `json:"row_end"`
	Generation int     `json:"generation"`
	Degraded   bool    `json:"degraded"`
	IFL        float64 `json:"ifl"`
}

// ViewBody is the coordinator's /view response: the stitched global partition
// plus the cluster's serving metadata. CellGroups reuses the shard wire type
// (server.GroupBody) with globally renumbered IDs, so a healthy single-shard
// cluster serves exactly the bytes the unsharded server would. Degraded is
// true whenever the stitched view is anything less than the full fresh grid
// (missing shard, degraded shard, or a dropped boundary group) and is also
// signaled via the Warning: 110 header.
type ViewBody struct {
	Degraded      bool               `json:"degraded"`
	Rows          int                `json:"rows"`
	Cols          int                `json:"cols"`
	Groups        int                `json:"groups"`
	ValidGroups   int                `json:"valid_groups"`
	IFL           float64            `json:"ifl"`
	Shards        []ShardMeta        `json:"shards"`
	MissingShards []int              `json:"missing_shards,omitempty"`
	DroppedGroups []DroppedGroup     `json:"dropped_groups,omitempty"`
	CellGroups    []server.GroupBody `json:"cell_groups,omitempty"`
}

// AssembleView stitches the present shard views into the cluster /view body.
// missing lists the shards that produced no usable response (breaker open,
// unreachable, bad payload); the body carries them explicitly instead of
// silently serving a hole.
//
// The stitched IFL is the valid-cell-weighted mean of the shard IFLs — each
// shard's IFL is itself a mean over its valid cells, so the weighted fold
// recovers the global mean. When exactly one shard contributes, its IFL is
// passed through verbatim (bit-exact, no re-rounding through the fold).
func AssembleView(p Plan, views []ShardView, missing []int, includeGroups bool) ViewBody {
	sort.Slice(views, func(i, j int) bool { return views[i].Shard < views[j].Shard })
	body := ViewBody{
		Rows:          p.Rows,
		Cols:          p.Cols,
		Shards:        make([]ShardMeta, 0, len(views)),
		MissingShards: append([]int(nil), missing...),
	}
	sort.Ints(body.MissingShards)

	var frags []Fragment
	weighted, weight := 0.0, 0
	for _, v := range views {
		b := p.Bands[v.Shard]
		body.Shards = append(body.Shards, ShardMeta{
			Shard:      v.Shard,
			RowBegin:   b.Row0,
			RowEnd:     b.Row1 - 1,
			Generation: v.Generation,
			Degraded:   v.Degraded,
			IFL:        v.IFL,
		})
		if v.Degraded {
			body.Degraded = true
		}
		frags = append(frags, v.Fragments...)
		vc := v.ValidCells()
		weighted += float64(vc) * v.IFL
		weight += vc
	}
	switch {
	case len(views) == 1:
		body.IFL = views[0].IFL
	case weight > 0:
		body.IFL = weighted / float64(weight)
	}

	res := Stitch(p.Rows, p.Cols, frags)
	body.DroppedGroups = res.Dropped
	if len(body.MissingShards) > 0 || len(res.Dropped) > 0 {
		body.Degraded = true
	}
	body.Groups = len(res.Groups)
	for gi, g := range res.Groups {
		if !g.Null {
			body.ValidGroups++
		}
		if includeGroups {
			body.CellGroups = append(body.CellGroups, server.GroupBody{
				ID:       gi,
				RowBegin: g.RowBegin,
				RowEnd:   g.RowEnd,
				ColBegin: g.ColBegin,
				ColEnd:   g.ColEnd,
				Cells:    g.Cells(),
				Null:     g.Null,
				Features: g.Features,
			})
		}
	}
	return body
}

// FragmentsOf projects a shard's served view into global-coordinate
// fragments: local extents are translated by the band's row offset and each
// group is its own parent (a shard's repartition is confined to its band, so
// none of its groups span a border). This is the in-process twin of the
// coordinator's wire decoding — both must produce identical fragments for
// the same view, which the byte-identity property tests enforce end to end.
func FragmentsOf(b Band, v stream.View) []Fragment {
	frags := make([]Fragment, 0, v.NumGroups())
	for gi, cg := range v.Partition.Groups {
		f := Fragment{
			Shard:    b.Index,
			RowBegin: cg.RBeg + b.Row0, RowEnd: cg.REnd + b.Row0,
			ColBegin: cg.CBeg, ColEnd: cg.CEnd,
			Null:       cg.Null,
			Generation: v.Generation,
		}
		f.ParentRowBegin, f.ParentRowEnd = f.RowBegin, f.RowEnd
		f.ParentColBegin, f.ParentColEnd = f.ColBegin, f.ColEnd
		if gi < len(v.Features) && v.Features[gi] != nil {
			f.Features = copyFloats(v.Features[gi])
		}
		frags = append(frags, f)
	}
	return frags
}
