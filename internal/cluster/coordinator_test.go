package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spatialrepart/internal/grid"
	"spatialrepart/internal/server"
	"spatialrepart/internal/stream"
	"spatialrepart/internal/testutil"
)

func TestMain(m *testing.M) { testutil.VerifyNoLeaks(m) }

func testAttrs() []grid.Attribute {
	return []grid.Attribute{{Name: "v", Agg: grid.Average}, {Name: "n", Agg: grid.Sum, Integer: true}}
}

func testRecords(rng *rand.Rand, b grid.Bounds, n int) []grid.Record {
	recs := make([]grid.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, grid.Record{
			Lat:    b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
			Lon:    b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
			Values: []float64{rng.NormFloat64(), float64(rng.Intn(5))},
		})
	}
	return recs
}

// testCluster is a full in-process cluster: plan, shard streams, shard HTTP
// servers, and a coordinator mounted on httptest.
type testCluster struct {
	plan    Plan
	streams []*stream.Repartitioner
	shards  []*httptest.Server
	coord   *Coordinator
	front   *httptest.Server
}

// startCluster ingests recs into `shards` shard streams (routed via the
// plan) and mounts the whole cluster. mutate lets a test wrap shard handlers
// (nil = plain shard servers).
func startCluster(t *testing.T, rows, cols, shards int, recs []grid.Record,
	cfgTweak func(*Config), wrap func(i int, h http.Handler) http.Handler) *testCluster {
	t.Helper()
	p, err := NewPlan(rows, cols, testBounds(), shards)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{plan: p}
	backends := make([]string, shards)
	for i := 0; i < shards; i++ {
		s, err := NewShard(p, i, testAttrs(), stream.Options{Threshold: 0.5, MinRecordsBetweenChecks: 1})
		if err != nil {
			t.Fatal(err)
		}
		tc.streams = append(tc.streams, s)
		srv, err := server.New(server.Config{Source: s})
		if err != nil {
			t.Fatal(err)
		}
		h := http.Handler(srv.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		tc.shards = append(tc.shards, ts)
		backends[i] = ts.URL
	}
	for _, rec := range recs {
		shard, local, ok := p.Route(rec)
		if !ok {
			continue
		}
		if err := tc.streams[shard].Add(local); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Plan: p, Backends: backends}
	if cfgTweak != nil {
		cfgTweak(&cfg)
	}
	tc.coord, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.front = httptest.NewServer(tc.coord.Handler())
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	if tc.front != nil {
		tc.front.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tc.coord.Shutdown(ctx)
	for _, s := range tc.shards {
		s.Close()
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestSingleShardViewMatchesUnshardedServer is the N=1 anchor of the
// byte-identity property: a one-shard cluster's stitched cell-groups are the
// EXACT bytes the plain unsharded server emits for the same records, and the
// summary fields agree.
func TestSingleShardViewMatchesUnshardedServer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := testRecords(rng, testBounds(), 600)

	tc := startCluster(t, 8, 8, 1, recs, nil, nil)
	resp, clusterBody := getBody(t, tc.front.URL+"/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("healthy cluster /view: status %d warning %q", resp.StatusCode, resp.Header.Get("Warning"))
	}

	// The unsharded reference: same records, one stream over the full grid.
	ref, err := stream.New(testBounds(), 8, 8, testAttrs(), stream.Options{Threshold: 0.5, MinRecordsBetweenChecks: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := ref.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	refSrv, err := server.New(server.Config{Source: ref})
	if err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	_, refBody := getBody(t, refTS.URL+"/view")

	var cv ViewBody
	var sv server.ViewBody
	if err := json.Unmarshal(clusterBody, &cv); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(refBody, &sv); err != nil {
		t.Fatal(err)
	}
	if cv.Degraded || len(cv.MissingShards) != 0 {
		t.Fatalf("healthy cluster degraded=%t missing=%v", cv.Degraded, cv.MissingShards)
	}
	if cv.Rows != sv.Rows || cv.Cols != sv.Cols || cv.Groups != sv.Groups ||
		cv.ValidGroups != sv.ValidGroups || cv.IFL != sv.IFL {
		t.Fatalf("summary mismatch: cluster %+v vs server rows=%d cols=%d groups=%d valid=%d ifl=%v",
			cv, sv.Rows, sv.Cols, sv.Groups, sv.ValidGroups, sv.IFL)
	}
	cg, _ := json.Marshal(cv.CellGroups)
	sg, _ := json.Marshal(sv.CellGroups)
	if !bytes.Equal(cg, sg) {
		t.Fatalf("cell-group bytes differ:\ncluster: %s\nserver:  %s", cg, sg)
	}
}

// TestStitchedViewMatchesInProcessReference: for N∈{1,2,4}, the coordinator's
// HTTP /view is byte-identical to ViewFromStreams over the same shard
// streams — the full wire body, not just the groups.
func TestStitchedViewMatchesInProcessReference(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + shards)))
			recs := testRecords(rng, testBounds(), 800)
			tc := startCluster(t, 12, 6, shards, recs, nil, nil)

			// Warm every shard so the reference call below cannot trigger a
			// fresh recompute between the two observations.
			for _, s := range tc.streams {
				if _, err := s.Current(); err != nil {
					t.Fatal(err)
				}
			}
			resp, httpBody := getBody(t, tc.front.URL+"/view")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/view status %d: %s", resp.StatusCode, httpBody)
			}
			ref, err := ViewFromStreams(tc.plan, tc.streams)
			if err != nil {
				t.Fatal(err)
			}
			var refBuf bytes.Buffer
			if err := json.NewEncoder(&refBuf).Encode(ref); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(httpBody, refBuf.Bytes()) {
				t.Fatalf("HTTP view != in-process reference:\nhttp: %s\nref:  %s", httpBody, refBuf.Bytes())
			}
		})
	}
}

// TestCellAndGroupRouting: point queries are routed to the owning shard and
// translated back into the global frame, agreeing with the stitched view.
func TestCellAndGroupRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	recs := testRecords(rng, testBounds(), 500)
	tc := startCluster(t, 10, 5, 2, recs, nil, nil)

	_, viewBody := getBody(t, tc.front.URL+"/view")
	var cv ViewBody
	if err := json.Unmarshal(viewBody, &cv); err != nil {
		t.Fatal(err)
	}
	groupAt := func(row, col int) server.GroupBody {
		for _, g := range cv.CellGroups {
			if row >= g.RowBegin && row <= g.RowEnd && col >= g.ColBegin && col <= g.ColEnd {
				return g
			}
		}
		t.Fatalf("no stitched group covers (%d,%d)", row, col)
		return server.GroupBody{}
	}
	for _, cell := range [][2]int{{0, 0}, {4, 4}, {5, 0}, {9, 4}} {
		row, col := cell[0], cell[1]
		resp, body := getBody(t, fmt.Sprintf("%s/cell?row=%d&col=%d", tc.front.URL, row, col))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/cell(%d,%d) status %d: %s", row, col, resp.StatusCode, body)
		}
		var cb CellBody
		if err := json.Unmarshal(body, &cb); err != nil {
			t.Fatal(err)
		}
		if cb.Row != row || cb.Col != col || cb.Shard != tc.plan.ShardFor(row) {
			t.Fatalf("/cell(%d,%d) = %+v", row, col, cb)
		}
		want := groupAt(row, col)
		if cb.Group.RowBegin != want.RowBegin || cb.Group.RowEnd != want.RowEnd ||
			cb.Group.ColBegin != want.ColBegin || cb.Group.ColEnd != want.ColEnd ||
			cb.Group.Null != want.Null {
			t.Fatalf("/cell(%d,%d) group %+v, stitched view has %+v", row, col, cb.Group, want)
		}

		resp, body = getBody(t, fmt.Sprintf("%s/group?row=%d&col=%d", tc.front.URL, row, col))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/group(%d,%d) status %d: %s", row, col, resp.StatusCode, body)
		}
		var gb GroupQueryBody
		if err := json.Unmarshal(body, &gb); err != nil {
			t.Fatal(err)
		}
		if gb.Group.RowBegin != want.RowBegin || gb.Group.RowEnd != want.RowEnd {
			t.Fatalf("/group(%d,%d) = %+v, want extent of %+v", row, col, gb.Group, want)
		}
	}

	// Bad and out-of-grid coordinates are rejected by the coordinator
	// itself, without consulting any shard.
	for url, wantStatus := range map[string]int{
		"/cell?row=abc&col=0": http.StatusBadRequest,
		"/cell?row=10&col=0":  http.StatusNotFound,
		"/cell?row=0&col=-1":  http.StatusNotFound,
		"/group?row=0&col=99": http.StatusNotFound,
	} {
		resp, body := getBody(t, tc.front.URL+url)
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s status %d (want %d): %s", url, resp.StatusCode, wantStatus, body)
		}
	}
}

// TestShardErrorPassthrough: a shard's 4xx taxonomy answer is relayed
// verbatim — status and body — so clients see the shard's own error codes.
func TestShardErrorPassthrough(t *testing.T) {
	p, err := NewPlan(4, 4, testBounds(), 1)
	if err != nil {
		t.Fatal(err)
	}
	notFound := `{"error":"not_found","detail":"synthetic"}` + "\n"
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, notFound)
	}))
	defer backend.Close()
	c, err := New(Config{Plan: p, Backends: []string{backend.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownCoordinator(t, c)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	resp, body := getBody(t, front.URL+"/cell?row=1&col=1")
	if resp.StatusCode != http.StatusNotFound || string(body) != notFound {
		t.Fatalf("passthrough: status %d body %q, want 404 %q", resp.StatusCode, body, notFound)
	}
}

// TestTraceparentPropagation: the coordinator adopts an inbound traceparent,
// echoes it on the response, and forwards the same trace ID to the shards.
func TestTraceparentPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := testRecords(rng, testBounds(), 100)
	var shardSaw []string
	tc := startCluster(t, 4, 4, 1, recs, nil, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			shardSaw = append(shardSaw, r.Header.Get("traceparent"))
			h.ServeHTTP(w, r)
		})
	})

	const inbound = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest(http.MethodGet, tc.front.URL+"/view", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	const traceID = "0123456789abcdef0123456789abcdef"
	if echoed := resp.Header.Get("traceparent"); !contains(echoed, traceID) {
		t.Fatalf("response traceparent %q does not carry inbound trace %s", echoed, traceID)
	}
	if len(shardSaw) == 0 {
		t.Fatal("shard never saw a request")
	}
	for _, tp := range shardSaw {
		if !contains(tp, traceID) {
			t.Fatalf("shard saw traceparent %q, want trace %s", tp, traceID)
		}
	}
}

// TestSpanningFragmentsOverWire: cluster-aware backends may emit parent_*
// fields for border-spanning groups; the coordinator stitches them — and
// refuses to stitch a generation mix — straight off the wire.
func TestSpanningFragmentsOverWire(t *testing.T) {
	p, err := NewPlan(4, 2, testBounds(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// One global group spanning both bands: rows 0..3, cols 0..1.
	mkBackend := func(band Band, generation int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/view" {
				http.NotFound(w, r)
				return
			}
			parent := map[string]any{
				"id": 0,
				// local coordinates of the band's slice
				"row_begin": 0, "row_end": band.Rows() - 1,
				"col_begin": 0, "col_end": 1,
				"cells": band.Rows() * 2, "features": []float64{3.25},
				"parent_row_begin": 0, "parent_row_end": 3,
				"parent_col_begin": 0, "parent_col_end": 1,
			}
			json.NewEncoder(w).Encode(map[string]any{
				"generation": generation, "rows": band.Rows(), "cols": 2,
				"groups": 1, "valid_groups": 1, "ifl": 0.125,
				"cell_groups": []any{parent},
			})
		}))
	}

	t.Run("same generation stitches", func(t *testing.T) {
		b0, b1 := mkBackend(p.Bands[0], 7), mkBackend(p.Bands[1], 7)
		defer b0.Close()
		defer b1.Close()
		c, err := New(Config{Plan: p, Backends: []string{b0.URL, b1.URL}})
		if err != nil {
			t.Fatal(err)
		}
		defer shutdownCoordinator(t, c)
		front := httptest.NewServer(c.Handler())
		defer front.Close()
		resp, body := getBody(t, front.URL+"/view")
		var cv ViewBody
		if err := json.Unmarshal(body, &cv); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || cv.Degraded || cv.Groups != 1 {
			t.Fatalf("status %d degraded=%t groups=%d: %s", resp.StatusCode, cv.Degraded, cv.Groups, body)
		}
		g := cv.CellGroups[0]
		if g.RowBegin != 0 || g.RowEnd != 3 || g.ColBegin != 0 || g.ColEnd != 1 || g.Cells != 8 {
			t.Fatalf("stitched spanning group = %+v", g)
		}
		if cv.IFL != 0.125 {
			t.Fatalf("stitched IFL = %v, want 0.125", cv.IFL)
		}
	})

	t.Run("generation mix is dropped, never merged", func(t *testing.T) {
		b0, b1 := mkBackend(p.Bands[0], 7), mkBackend(p.Bands[1], 8)
		defer b0.Close()
		defer b1.Close()
		c, err := New(Config{Plan: p, Backends: []string{b0.URL, b1.URL}})
		if err != nil {
			t.Fatal(err)
		}
		defer shutdownCoordinator(t, c)
		front := httptest.NewServer(c.Handler())
		defer front.Close()
		resp, body := getBody(t, front.URL+"/view")
		var cv ViewBody
		if err := json.Unmarshal(body, &cv); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if cv.Groups != 0 || len(cv.DroppedGroups) != 1 ||
			cv.DroppedGroups[0].Reason != "generation mix across fragments" {
			t.Fatalf("generation mix: groups=%d dropped=%+v", cv.Groups, cv.DroppedGroups)
		}
		if !cv.Degraded || resp.Header.Get("Warning") == "" {
			t.Fatalf("dropped-group response not marked degraded (warning %q)", resp.Header.Get("Warning"))
		}
	})
}

// TestDrainingCoordinator: after Shutdown begins, new queries shed 503
// draining with a jittered Retry-After, and /readyz flips not-ready.
func TestDrainingCoordinator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tc := startCluster(t, 4, 4, 1, testRecords(rng, testBounds(), 50), func(cfg *Config) {
		cfg.RetryAfter = 4 * time.Second
	}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tc.coord.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/view", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /view status %d, want 503", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("draining shed carries no Retry-After")
	}
	var secs int
	fmt.Sscanf(ra, "%d", &secs)
	if secs < 2 || secs > 4 {
		t.Fatalf("Retry-After %q outside the jittered [2,4] band for RetryAfter=4s", ra)
	}

	rec = httptest.NewRecorder()
	tc.coord.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz status %d, want 503", rec.Code)
	}
}

func shutdownCoordinator(t *testing.T, c *Coordinator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Errorf("coordinator shutdown: %v", err)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
