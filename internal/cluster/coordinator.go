package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"spatialrepart/internal/breaker"
	"spatialrepart/internal/fault"
	"spatialrepart/internal/obs"
	"spatialrepart/internal/server"
)

// Defaults for the zero Config fields.
const (
	DefaultShardTimeout     = 2 * time.Second
	DefaultRetryMax         = 2
	DefaultFailureThreshold = 3
	DefaultInitialBackoff   = 50 * time.Millisecond
	DefaultMaxBackoff       = 5 * time.Second
	DefaultHedgeMinSamples  = 8
)

// Config parameterizes a Coordinator. Plan and Backends are required and
// must agree: Backends[i] is the base URL of the shard serving band i.
type Config struct {
	// Plan is the cluster's sharding geometry.
	Plan Plan
	// Backends are the shard base URLs ("http://host:port"), one per band.
	Backends []string

	// Client performs the shard requests (default: a dedicated client on a
	// cloned default transport, so Shutdown's CloseIdleConnections never
	// touches unrelated traffic).
	Client *http.Client
	// ShardTimeout bounds one shard attempt (default 2s).
	ShardTimeout time.Duration
	// RetryMax is the number of ADDITIONAL attempts per shard fetch after
	// the first fails retryably (default 2; reads are idempotent GETs).
	RetryMax int
	// FailureThreshold consecutive failures open a backend's breaker
	// (default 3).
	FailureThreshold int
	// InitialBackoff/MaxBackoff bound the per-backend retry backoff
	// (defaults 50ms / 5s).
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// JitterSeed seeds the deterministic backoff jitter; backend i draws
	// from stream seed+i (0 = a fixed default).
	JitterSeed int64
	// Hedge enables hedged reads: once a backend has HedgeMinSamples
	// recorded successes, a duplicate request launches after its observed
	// p99 latency and the first answer wins.
	Hedge bool
	// HedgeMinSamples gates hedging until the latency estimate is real
	// (default 8).
	HedgeMinSamples int

	// MaxInFlight/MaxQueue/QueueWait/RequestTimeout mirror the shard
	// server's admission envelope (defaults 64/16/100ms/5s).
	MaxInFlight    int
	MaxQueue       int
	QueueWait      time.Duration
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to shed responses,
	// jittered per response into [RetryAfter/2, RetryAfter) (default 1s).
	RetryAfter time.Duration

	// Obs, when non-nil, receives the coordinator metrics (per-backend
	// breaker gauges, retry/hedge counters, RED series) and spans.
	Obs *obs.Observer
	// Fault, when non-nil, is consulted at "cluster.request" (after
	// admission) and "cluster.fetch" (before every shard attempt).
	Fault *fault.Injector
	// Clock substitutes the time source for deterministic chaos tests
	// (nil = real clock).
	Clock server.Clock
}

// Coordinator is the cluster's stateless front door. Create with New, mount
// via Handler or run with Serve, stop with Shutdown. It holds no view state
// of its own — every response is assembled from live shard responses, so
// coordinators can be replicated freely.
type Coordinator struct {
	cfg      Config
	plan     Plan
	backends []*backend
	client   *http.Client
	ownsClnt bool
	adm      *server.Admission
	clock    server.Clock
	obs      *obs.Observer
	flt      *fault.Injector

	draining atomic.Bool
	httpSrv  *http.Server
	mux      *http.ServeMux
	retryRng atomic.Uint64
}

// realClock is the production clock (the cluster package injects its time
// source for the fake-clock chaos suite, same contract as internal/server).
type realClock struct{}

//spatialvet:ignore clockdirect realClock is the sanctioned bridge to package time
func (realClock) Now() time.Time { return time.Now() }

//spatialvet:ignore clockdirect realClock is the sanctioned bridge to package time
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// New validates cfg, applies defaults, and returns a ready-to-mount
// Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Plan.Bands) == 0 {
		return nil, fmt.Errorf("cluster: Config.Plan is required (see NewPlan)")
	}
	if len(cfg.Backends) != len(cfg.Plan.Bands) {
		return nil, fmt.Errorf("cluster: %d backends for %d bands", len(cfg.Backends), len(cfg.Plan.Bands))
	}
	for i, b := range cfg.Backends {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %d: invalid base URL %q", i, b)
		}
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	if cfg.RetryMax < 0 {
		return nil, fmt.Errorf("cluster: negative RetryMax %d", cfg.RetryMax)
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = DefaultInitialBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	c := &Coordinator{
		cfg:   cfg,
		plan:  cfg.Plan,
		adm:   server.NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		clock: clock,
		obs:   cfg.Obs,
		flt:   cfg.Fault,
	}
	c.client = cfg.Client
	if c.client == nil {
		c.client = &http.Client{Transport: http.DefaultTransport.(*http.Transport).Clone()}
		c.ownsClnt = true
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 1
	}
	c.retryRng.Store(uint64(seed))
	for i, base := range cfg.Backends {
		c.backends = append(c.backends, &backend{
			index: i,
			base:  base,
			brk:   breaker.New(cfg.FailureThreshold, cfg.InitialBackoff, cfg.MaxBackoff, seed+int64(i)+1),
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", c.probe(c.handleHealthz))
	mux.HandleFunc("/readyz", c.probe(c.handleReadyz))
	mux.HandleFunc("/view", c.query("/view", c.handleView))
	mux.HandleFunc("/stats", c.query("/stats", c.handleStats))
	mux.HandleFunc("/cell", c.query("/cell", c.handleCell))
	mux.HandleFunc("/group", c.query("/group", c.handleGroup))
	c.mux = mux
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Serve binds addr, starts the hardened HTTP server in the background, and
// returns the bound address. Stop with Shutdown.
func (c *Coordinator) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	srv := obs.HardenedServer(c.Handler())
	c.httpSrv = srv
	//spatialvet:ignore goroleak Serve blocks until the listener closes; Shutdown stops it and awaits in-flight requests
	go func() { _ = srv.Serve(ln) }() //spatialvet:ignore errdrop Serve returns ErrServerClosed on shutdown; Shutdown owns the lifecycle
	return ln.Addr().String(), nil
}

// Shutdown drains the coordinator gracefully within ctx's deadline: new
// requests shed 503 draining, in-flight requests finish, the listener
// closes, and the owned client's idle backend connections are released.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	start := c.clock.Now()
	c.draining.Store(true)
	c.obs.SetGauge("cluster.draining", 1)
	c.adm.BeginDrain()
	drainErr := c.adm.AwaitDrained(ctx)
	c.obs.SetGauge("cluster.drain_ns", float64(c.clock.Now().Sub(start).Nanoseconds()))
	if c.httpSrv != nil {
		if drainErr != nil {
			c.httpSrv.Close() //spatialvet:ignore errdrop forced close after a blown drain deadline; the deadline error is the one reported
		} else if err := c.httpSrv.Shutdown(ctx); err != nil {
			c.httpSrv.Close() //spatialvet:ignore errdrop forced close fallback; the Shutdown error is the one reported
			drainErr = err
		}
	}
	if c.ownsClnt {
		c.client.CloseIdleConnections()
	}
	return drainErr
}

// handlerFunc is a coordinator handler: it returns taxonomy errors instead
// of writing statuses itself, mirroring internal/server.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// statusWriter captures the written status for the RED metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// probe wraps /healthz and /readyz: panic isolation and a method check only
// — probes bypass admission so they keep answering under overload.
func (c *Coordinator) probe(h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer c.recoverRequest(sw)
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			server.WriteError(sw, server.ErrMethodNotAllowed.WithDetail("%s not allowed", r.Method))
			return
		}
		if err := h(sw, r); err != nil {
			server.WriteError(sw, err)
		}
	}
}

// query wraps a handler in the coordinator's robustness envelope: trace
// adoption + cluster.request span, panic isolation, method check, admission
// control with graceful-drain semantics, per-request deadline, and the
// cluster.request fault point.
func (c *Coordinator) query(route string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		c.obs.Count("cluster.requests", 1)

		ctx := r.Context()
		if tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			ctx = obs.ContextWithTrace(ctx, tc)
		}
		ctx, sp := c.obs.StartSpanCtx(ctx, "cluster.request", "route", route) //spatialvet:ignore spanend ended by the deferred finish below, which needs the final status first
		if tc, ok := obs.TraceFromContext(ctx); ok {
			sw.Header().Set("traceparent", tc.Traceparent())
		}
		start := c.clock.Now()
		defer func() { c.finishRequest(sw, route, sp, start) }()
		defer c.recoverRequest(sw)

		if r.Method != http.MethodGet {
			server.WriteError(sw, server.ErrMethodNotAllowed.WithDetail("%s not allowed; query endpoints are GET-only", r.Method))
			return
		}

		ctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)

		if _, err := c.adm.Admit(ctx, c.clock, c.cfg.QueueWait); err != nil {
			c.obs.Count("cluster.shed", 1)
			server.WriteError(sw, c.attachRetryAfter(err))
			return
		}
		defer c.adm.Release()

		if ferr := c.flt.Hit("cluster.request"); ferr != nil {
			server.WriteError(sw, ferr)
			return
		}
		if err := h(sw, r); err != nil {
			if ctx.Err() != nil {
				err = server.ErrTimeout.WithDetail("request deadline (%v) expired: %v", c.cfg.RequestTimeout, err)
			}
			server.WriteError(sw, err)
		}
	}
}

// finishRequest ends the request span and records the RED route×status
// series.
func (c *Coordinator) finishRequest(sw *statusWriter, route string, sp obs.Span, start time.Time) {
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	code := strconv.Itoa(status)
	if c.obs.Enabled() {
		c.obs.Count(obs.FoldLabels("cluster.http.requests", []string{route, code}), 1)
		if status >= 500 {
			c.obs.Count(obs.FoldLabels("cluster.http.errors", []string{route, code}), 1)
		}
		c.obs.Observe(obs.FoldLabels("cluster.http.latency_ns", []string{route, code}), float64(c.clock.Now().Sub(start).Nanoseconds()))
	}
	if sp.Traced() {
		sp.End("status", code)
	} else {
		sp.End()
	}
}

// recoverRequest converts a handler panic into a 500 on this one request.
func (c *Coordinator) recoverRequest(sw *statusWriter) {
	if rec := recover(); rec != nil {
		c.obs.Count("cluster.panics", 1)
		server.WriteError(sw, server.ErrInternal.WithDetail("handler panicked: %v", rec))
	}
}

// attachRetryAfter decorates shed errors with a jittered Retry-After hint in
// [RetryAfter/2, RetryAfter), drawn from the coordinator's seeded SplitMix64
// stream — the same de-synchronization the shards apply to their own sheds.
func (c *Coordinator) attachRetryAfter(err error) error {
	var se *server.Error
	if !errors.As(err, &se) || se.RetryAfter != 0 {
		return err
	}
	if se.Status != http.StatusServiceUnavailable {
		return err
	}
	x := c.retryRng.Add(0x9e3779b97f4a7c15)
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	f := 0.5 + 0.5*float64(z>>11)/float64(1<<53)
	cp := *se
	cp.RetryAfter = time.Duration(float64(c.cfg.RetryAfter) * f)
	return &cp
}

// writeJSON writes v as the 200 response body.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return fmt.Errorf("cluster: encoding response: %w", err)
	}
	return nil
}

// ---- probe endpoints -------------------------------------------------------

// HealthBody is the coordinator /healthz response.
type HealthBody struct {
	Status   string `json:"status"`
	Shards   int    `json:"shards"`
	Draining bool   `json:"draining,omitempty"`
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, HealthBody{Status: "ok", Shards: len(c.backends), Draining: c.draining.Load()})
}

// ShardReady is one shard's entry in the cluster readiness body.
type ShardReady struct {
	Shard      int    `json:"shard"`
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"`
	Breaker    string `json:"breaker"` // the COORDINATOR's breaker for this backend
	Generation int    `json:"generation"`
}

// ReadyBody is the coordinator /readyz response. The cluster is ready while
// at least one shard is — partial serving is the contract, so a single dead
// shard degrades readiness rather than revoking it; only a fully dark
// cluster turns the load balancer away.
type ReadyBody struct {
	Ready    bool         `json:"ready"`
	Reason   string       `json:"reason,omitempty"`
	Degraded bool         `json:"degraded"`
	Shards   []ShardReady `json:"shards"`
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	type probeRes struct {
		idx  int
		sr   ShardReady
		okay bool
	}
	ch := make(chan probeRes, len(c.backends))
	for _, b := range c.backends {
		go func(b *backend) {
			sr := ShardReady{Shard: b.index}
			b.mu.Lock()
			sr.Breaker = b.brk.State().String()
			b.mu.Unlock()
			// Probes bypass the breaker and retry loop on purpose: they are
			// how the coordinator notices a shard came BACK, and they must
			// stay cheap and honest while the fetch path is refusing.
			res, err := c.roundTrip(r.Context(), b, "/readyz")
			if err != nil {
				sr.Reason = "unreachable: " + err.Error()
				ch <- probeRes{idx: b.index, sr: sr}
				return
			}
			var body server.ReadyBody
			if jerr := json.Unmarshal(res.Body, &body); jerr != nil {
				sr.Reason = "bad readiness payload"
				ch <- probeRes{idx: b.index, sr: sr}
				return
			}
			sr.Ready = body.Ready
			sr.Reason = body.Reason
			sr.Generation = body.Gen
			ch <- probeRes{idx: b.index, sr: sr, okay: body.Ready}
		}(b)
	}
	out := ReadyBody{Shards: make([]ShardReady, len(c.backends))}
	readyCount := 0
	for range c.backends {
		pr := <-ch
		out.Shards[pr.idx] = pr.sr
		if pr.okay {
			readyCount++
		}
	}
	switch {
	case c.draining.Load():
		out.Ready, out.Reason = false, "draining"
	case readyCount == 0:
		out.Ready, out.Reason = false, "no shard ready"
	default:
		out.Ready = true
		out.Degraded = readyCount < len(c.backends)
	}
	w.Header().Set("Content-Type", "application/json")
	if !out.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("cluster: encoding readiness: %w", err)
	}
	return nil
}

// ---- scatter-gather endpoints ----------------------------------------------

// shardGroupWire is the coordinator's decoding of one shard cell-group. The
// coordinate fields are the shard's wire form (server.GroupBody, local
// coordinates); the optional parent_* fields let a cluster-aware backend
// declare a border-spanning group's GLOBAL parent extent — absent, the group
// is its own parent (true for the stock shard stack, whose partitions are
// confined to their band).
type shardGroupWire struct {
	ID       int       `json:"id"`
	RowBegin int       `json:"row_begin"`
	RowEnd   int       `json:"row_end"`
	ColBegin int       `json:"col_begin"`
	ColEnd   int       `json:"col_end"`
	Cells    int       `json:"cells"`
	Null     bool      `json:"null"`
	Features []float64 `json:"features"`

	ParentRowBegin *int `json:"parent_row_begin"`
	ParentRowEnd   *int `json:"parent_row_end"`
	ParentColBegin *int `json:"parent_col_begin"`
	ParentColEnd   *int `json:"parent_col_end"`
}

// shardViewWire is the coordinator's decoding of a shard /view response.
type shardViewWire struct {
	Generation int              `json:"generation"`
	Degraded   bool             `json:"degraded"`
	Rows       int              `json:"rows"`
	Cols       int              `json:"cols"`
	IFL        float64          `json:"ifl"`
	CellGroups []shardGroupWire `json:"cell_groups"`
}

// shardViewOf decodes and translates one shard's /view body into the global
// frame.
func shardViewOf(b Band, body []byte) (ShardView, error) {
	var wire shardViewWire
	if err := json.Unmarshal(body, &wire); err != nil {
		return ShardView{}, fmt.Errorf("cluster: shard %d view: %w", b.Index, err)
	}
	sv := ShardView{
		Shard:      b.Index,
		Generation: wire.Generation,
		Degraded:   wire.Degraded,
		IFL:        wire.IFL,
		Fragments:  make([]Fragment, 0, len(wire.CellGroups)),
	}
	for _, g := range wire.CellGroups {
		f := Fragment{
			Shard:    b.Index,
			RowBegin: g.RowBegin + b.Row0, RowEnd: g.RowEnd + b.Row0,
			ColBegin: g.ColBegin, ColEnd: g.ColEnd,
			Null:       g.Null,
			Features:   copyFloats(g.Features),
			Generation: wire.Generation,
		}
		if g.ParentRowBegin != nil && g.ParentRowEnd != nil && g.ParentColBegin != nil && g.ParentColEnd != nil {
			f.ParentRowBegin, f.ParentRowEnd = *g.ParentRowBegin, *g.ParentRowEnd
			f.ParentColBegin, f.ParentColEnd = *g.ParentColBegin, *g.ParentColEnd
		} else {
			f.ParentRowBegin, f.ParentRowEnd = f.RowBegin, f.RowEnd
			f.ParentColBegin, f.ParentColEnd = f.ColBegin, f.ColEnd
		}
		sv.Fragments = append(sv.Fragments, f)
	}
	return sv, nil
}

// scatter fetches pq from every backend concurrently and returns the raw
// per-shard results (nil error slot = success) in backend order.
func (c *Coordinator) scatter(ctx context.Context, pq string) ([]fetchResult, []error) {
	type slot struct {
		idx int
		res fetchResult
		err error
	}
	ch := make(chan slot, len(c.backends))
	for _, b := range c.backends {
		go func(b *backend) {
			res, err := c.fetch(ctx, b, pq)
			ch <- slot{idx: b.index, res: res, err: err}
		}(b)
	}
	results := make([]fetchResult, len(c.backends))
	errs := make([]error, len(c.backends))
	for range c.backends {
		s := <-ch
		results[s.idx], errs[s.idx] = s.res, s.err
	}
	return results, errs
}

// degradedWarning stamps the stale-response Warning header (the same 110
// convention the shards use for degraded last-good views).
func degradedWarning(w http.ResponseWriter) {
	w.Header().Set("Warning", `110 - "partial or stale cluster response"`)
}

// handleView scatter-gathers every shard's /view and serves the stitched
// global partition: GET /view (?groups=false omits the group list). Shards
// that fail their defended fetch are reported in missing_shards and the
// response degrades to 200 + Warning; only a fully dark cluster turns into
// a 503.
func (c *Coordinator) handleView(w http.ResponseWriter, r *http.Request) error {
	pq := "/view"
	includeGroups := r.URL.Query().Get("groups") != "false"
	results, errs := c.scatter(r.Context(), pq)

	var views []ShardView
	var missing []int
	var firstErr error
	for i := range results {
		if errs[i] != nil {
			missing = append(missing, i)
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		if results[i].Status != http.StatusOK {
			missing = append(missing, i)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %d returned status %d", i, results[i].Status)
			}
			continue
		}
		sv, err := shardViewOf(c.plan.Bands[i], results[i].Body)
		if err != nil {
			missing = append(missing, i)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		views = append(views, sv)
	}
	if len(views) == 0 {
		return server.ErrNotReady.WithDetail("no shard reachable: %v", firstErr)
	}
	body := AssembleView(c.plan, views, missing, includeGroups)
	if body.Degraded {
		degradedWarning(w)
	}
	c.obs.SetGauge("cluster.missing_shards", float64(len(missing)))
	if r.Context().Err() != nil {
		return server.ErrTimeout.WithDetail("deadline expired before the stitched view was written")
	}
	return writeJSON(w, body)
}

// ShardStats is one shard's entry in the cluster /stats response: the
// coordinator's client-side counters plus the shard's own report verbatim.
type ShardStats struct {
	Shard    int             `json:"shard"`
	Breaker  string          `json:"breaker"`
	Opens    int             `json:"breaker_opens"`
	Failures int             `json:"fetch_failures"`
	Refused  int             `json:"fetch_refused"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

// StatsBody is the coordinator /stats response.
type StatsBody struct {
	MissingShards []int        `json:"missing_shards,omitempty"`
	Shards        []ShardStats `json:"shards"`
}

// handleStats scatter-gathers shard /stats reports: GET /stats. Per-shard
// failures degrade to missing entries, same contract as /view.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) error {
	results, errs := c.scatter(r.Context(), "/stats")
	out := StatsBody{Shards: make([]ShardStats, len(c.backends))}
	for i, b := range c.backends {
		b.mu.Lock()
		out.Shards[i] = ShardStats{
			Shard:    i,
			Breaker:  b.brk.State().String(),
			Opens:    b.brk.Opens(),
			Failures: b.fails,
			Refused:  b.refused,
		}
		b.mu.Unlock()
		if errs[i] != nil || results[i].Status != http.StatusOK {
			out.MissingShards = append(out.MissingShards, i)
			continue
		}
		out.Shards[i].Stats = json.RawMessage(results[i].Body)
	}
	if len(out.MissingShards) == len(c.backends) {
		return server.ErrNotReady.WithDetail("no shard reachable")
	}
	if len(out.MissingShards) > 0 {
		degradedWarning(w)
	}
	sort.Ints(out.MissingShards)
	return writeJSON(w, out)
}

// routeCell parses and validates the global row/col query parameters and
// resolves the owning backend.
func (c *Coordinator) routeCell(r *http.Request) (b *backend, row, col int, err error) {
	q := r.URL.Query()
	row, aerr := strconv.Atoi(q.Get("row"))
	if aerr != nil {
		return nil, 0, 0, server.ErrBadRequest.WithDetail("row %q: %v", q.Get("row"), aerr)
	}
	col, aerr = strconv.Atoi(q.Get("col"))
	if aerr != nil {
		return nil, 0, 0, server.ErrBadRequest.WithDetail("col %q: %v", q.Get("col"), aerr)
	}
	if row < 0 || row >= c.plan.Rows || col < 0 || col >= c.plan.Cols {
		return nil, 0, 0, server.ErrNotFound.WithDetail("cell (%d,%d) outside the %dx%d grid", row, col, c.plan.Rows, c.plan.Cols)
	}
	shard := c.plan.ShardFor(row)
	return c.backends[shard], row, col, nil
}

// CellBody is the coordinator /cell response: the shard-resolved group
// translated into global coordinates, plus the owning shard.
type CellBody struct {
	Row   int              `json:"row"`
	Col   int              `json:"col"`
	Shard int              `json:"shard"`
	Group server.GroupBody `json:"group"`
}

// handleCell routes a point query to the owning shard:
// GET /cell?row=R&col=C (global coordinates). The shard is asked for its
// LOCAL cell; its answer is translated back into the global frame. The
// group ID is the shard's local ID — global IDs exist only on stitched
// views, and the body names the shard so (shard, id) is unambiguous.
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) error {
	b, row, col, err := c.routeCell(r)
	if err != nil {
		return err
	}
	band := c.plan.Bands[b.index]
	pq := fmt.Sprintf("/cell?row=%d&col=%d", row-band.Row0, col)
	res, ferr := c.fetch(r.Context(), b, pq)
	if ferr != nil {
		return server.ErrNotReady.WithDetail("shard %d unavailable: %v", b.index, ferr)
	}
	if res.Status != http.StatusOK {
		return passthrough(w, res)
	}
	var cb struct {
		Row   int              `json:"row"`
		Col   int              `json:"col"`
		Group server.GroupBody `json:"group"`
	}
	if jerr := json.Unmarshal(res.Body, &cb); jerr != nil {
		return server.ErrInternal.WithDetail("shard %d cell payload: %v", b.index, jerr)
	}
	cb.Group.RowBegin += band.Row0
	cb.Group.RowEnd += band.Row0
	return writeJSON(w, CellBody{Row: row, Col: col, Shard: b.index, Group: cb.Group})
}

// GroupQueryBody is the coordinator /group response.
type GroupQueryBody struct {
	Shard int              `json:"shard"`
	Group server.GroupBody `json:"group"`
}

// handleGroup resolves the cell-group containing a global cell:
// GET /group?row=R&col=C. Groups are addressed by coordinate, not by ID —
// a global group ID is a property of one stitched view generation, not a
// stable name the cluster could route on.
func (c *Coordinator) handleGroup(w http.ResponseWriter, r *http.Request) error {
	b, row, col, err := c.routeCell(r)
	if err != nil {
		return err
	}
	band := c.plan.Bands[b.index]
	pq := fmt.Sprintf("/cell?row=%d&col=%d", row-band.Row0, col)
	res, ferr := c.fetch(r.Context(), b, pq)
	if ferr != nil {
		return server.ErrNotReady.WithDetail("shard %d unavailable: %v", b.index, ferr)
	}
	if res.Status != http.StatusOK {
		return passthrough(w, res)
	}
	var cb struct {
		Group server.GroupBody `json:"group"`
	}
	if jerr := json.Unmarshal(res.Body, &cb); jerr != nil {
		return server.ErrInternal.WithDetail("shard %d cell payload: %v", b.index, jerr)
	}
	cb.Group.RowBegin += band.Row0
	cb.Group.RowEnd += band.Row0
	return writeJSON(w, GroupQueryBody{Shard: b.index, Group: cb.Group})
}

// passthrough relays a shard's non-200 answer (status and JSON body) to the
// client unchanged, so the shard's error taxonomy survives the hop.
func passthrough(w http.ResponseWriter, res fetchResult) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.Status)
	_, err := w.Write(res.Body)
	if err != nil {
		return fmt.Errorf("cluster: relaying shard response: %w", err)
	}
	return nil
}
