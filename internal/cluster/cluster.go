// Package cluster shards the streaming repartitioner across N spatial shards
// and puts a stateless, defensively wired coordinator in front of them
// (DESIGN.md §3.20). The grid is split into contiguous row bands (Plan); each
// shard runs the existing internal/stream + internal/server stack over its
// band's sub-grid and sub-bounds, and the coordinator speaks the shards' own
// HTTP API: /cell and /group are routed point queries, /view and /stats are
// scatter-gathers whose per-shard legs each get a deadline, a PR-4-style
// circuit breaker, capped jittered retries, and optional p99-hedging.
//
// The correctness core is the stitcher: shard cell-groups are reassembled
// into the global partition keyed by global group identity (the parent
// rectangle's top-left corner), with every disagreement — generation mix,
// feature drift, missing or overlapping fragments — dropped explicitly
// rather than merged on a guess. When shards fail, the coordinator keeps
// serving what it can: HTTP 200 with Warning: 110, degraded=true, and the
// missing shards named in the body; cluster /readyz stays ready while at
// least one shard is, mirroring the degraded-serving contract of the
// single-node stack.
package cluster

import (
	"fmt"

	"spatialrepart/internal/grid"
	"spatialrepart/internal/stream"
)

// NewShard constructs the streaming repartitioner for one band of the plan:
// the shard's grid is the band's rows × the global columns over the band's
// sub-bounds. Everything else about the shard — serving, checkpointing,
// fault tolerance — is the existing single-node stack, unchanged.
func NewShard(p Plan, shard int, attrs []grid.Attribute, opts stream.Options) (*stream.Repartitioner, error) {
	if shard < 0 || shard >= len(p.Bands) {
		return nil, fmt.Errorf("cluster: shard %d outside plan with %d bands", shard, len(p.Bands))
	}
	b := p.Bands[shard]
	return stream.New(b.Bounds, b.Rows(), p.Cols, attrs, opts)
}

// ViewFromStreams assembles the cluster view directly from in-process shard
// streams — the coordinator-free reference implementation the property tests
// compare the HTTP path against byte for byte. streams[i] must be the shard
// for band i of the plan.
func ViewFromStreams(p Plan, streams []*stream.Repartitioner) (ViewBody, error) {
	if len(streams) != len(p.Bands) {
		return ViewBody{}, fmt.Errorf("cluster: %d streams for %d bands", len(streams), len(p.Bands))
	}
	views := make([]ShardView, 0, len(streams))
	for i, s := range streams {
		v, err := s.Current()
		if err != nil {
			return ViewBody{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		views = append(views, ShardView{
			Shard:      i,
			Generation: v.Generation,
			Degraded:   v.Degraded,
			IFL:        v.IFL,
			Fragments:  FragmentsOf(p.Bands[i], v),
		})
	}
	return AssembleView(p, views, nil, true), nil
}
