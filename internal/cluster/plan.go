package cluster

import (
	"fmt"

	"spatialrepart/internal/grid"
)

// Band is one shard's slice of the global grid: the contiguous global rows
// [Row0, Row1) and the latitude sub-range they cover. Shards are full-width
// row bands — every band spans all columns — so a record's shard is a pure
// function of its latitude and the routing decision never needs the column.
type Band struct {
	Index  int         // shard index, 0-based
	Row0   int         // first global row owned (inclusive)
	Row1   int         // one past the last global row owned
	Bounds grid.Bounds // the band's geographic extent (lat sub-range, full lon)
}

// Rows returns the number of global rows the band owns.
func (b Band) Rows() int { return b.Row1 - b.Row0 }

// Plan is the cluster's sharding geometry: the global grid dimensions and the
// row-band assignment. It is pure data — the coordinator, the shard workers,
// and the test reference all derive their geometry from the same Plan, so
// "which shard owns cell (r,c)" has exactly one answer in the system.
type Plan struct {
	Rows, Cols int
	Bounds     grid.Bounds
	Bands      []Band
}

// NewPlan splits a rows×cols grid over `shards` contiguous row bands, as
// balanced as possible: the first rows%shards bands get one extra row. Band
// latitude cuts are placed exactly on the global row edges (the same
// arithmetic grid.Bounds.CellOf inverts), so a shard's local grid tiles the
// global grid without overlap or gap.
func NewPlan(rows, cols int, bounds grid.Bounds, shards int) (Plan, error) {
	if err := bounds.Validate(); err != nil {
		return Plan{}, err
	}
	if rows <= 0 || cols <= 0 {
		return Plan{}, fmt.Errorf("cluster: non-positive grid %dx%d", rows, cols)
	}
	if shards <= 0 {
		return Plan{}, fmt.Errorf("cluster: non-positive shard count %d", shards)
	}
	if shards > rows {
		return Plan{}, fmt.Errorf("cluster: %d shards over %d rows leaves empty bands", shards, rows)
	}
	p := Plan{Rows: rows, Cols: cols, Bounds: bounds, Bands: make([]Band, 0, shards)}
	base, extra := rows/shards, rows%shards
	row := 0
	for i := 0; i < shards; i++ {
		n := base
		if i < extra {
			n++
		}
		b := Band{Index: i, Row0: row, Row1: row + n}
		b.Bounds = grid.Bounds{
			MinLat: latEdge(bounds, rows, b.Row0),
			MaxLat: latEdge(bounds, rows, b.Row1),
			MinLon: bounds.MinLon,
			MaxLon: bounds.MaxLon,
		}
		p.Bands = append(p.Bands, b)
		row += n
	}
	return p, nil
}

// latEdge returns the latitude of the global row edge r (r ∈ [0, rows]).
// Edges 0 and rows are returned exactly as the global bounds so the outermost
// bands never shrink by a rounding ulp.
func latEdge(b grid.Bounds, rows, r int) float64 {
	switch r {
	case 0:
		return b.MinLat
	case rows:
		return b.MaxLat
	}
	return b.MinLat + float64(r)/float64(rows)*(b.MaxLat-b.MinLat)
}

// ShardFor returns the index of the band owning global row r, or -1 when r is
// outside the grid.
func (p Plan) ShardFor(r int) int {
	if r < 0 || r >= p.Rows {
		return -1
	}
	for _, b := range p.Bands {
		if r < b.Row1 {
			return b.Index
		}
	}
	return -1
}

// Route assigns a record to its shard and rewrites it into the shard's local
// frame. The global cell is computed ONCE against the global bounds; the
// record is then re-positioned at the center of its local cell, so the
// shard's own grid.Bounds.CellOf — operating on the band's sub-bounds —
// recovers exactly the same cell regardless of how the latitude cut rounded.
// Without the re-centering, a record within a float ulp of a band edge could
// be owned by one shard globally but binned into a different row locally.
// Returns ok=false for records outside the global bounds (the caller drops
// them, mirroring the unsharded stream's Dropped counter).
func (p Plan) Route(rec grid.Record) (shard int, local grid.Record, ok bool) {
	r, c, ok := p.Bounds.CellOf(rec.Lat, rec.Lon, p.Rows, p.Cols)
	if !ok {
		return 0, grid.Record{}, false
	}
	shard = p.ShardFor(r)
	if shard < 0 {
		return 0, grid.Record{}, false
	}
	b := p.Bands[shard]
	lat, lon := b.Bounds.CellCenter(r-b.Row0, c, b.Rows(), p.Cols)
	return shard, grid.Record{Lat: lat, Lon: lon, Values: rec.Values}, true
}
