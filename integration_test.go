package spatialrepart_test

// Cross-module integration tests: the paper's qualitative claims exercised
// end to end through the public pipeline at a small but non-trivial scale.

import (
	"testing"
	"time"

	"spatialrepart"
	"spatialrepart/internal/datagen"
	"spatialrepart/internal/forest"
	"spatialrepart/internal/metrics"
	"spatialrepart/internal/regress"
	"spatialrepart/internal/sampling"
	"spatialrepart/internal/weights"
)

// TestIntegrationTrainingTimeDropsErrorBounded is the paper's headline: the
// re-partitioned dataset trains faster with a bounded accuracy change.
func TestIntegrationTrainingTimeDropsErrorBounded(t *testing.T) {
	ds := datagen.HomeSales(99, 32, 32)
	original, err := spatialrepart.GridTrainingData(ds.Grid, ds.TargetAttr, ds.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := rp.TrainingData(ds.TargetAttr, ds.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Len() >= original.Len() {
		t.Fatalf("no reduction: %d vs %d", reduced.Len(), original.Len())
	}

	fit := func(d *spatialrepart.Dataset) (time.Duration, float64) {
		trainIdx, testIdx := d.Split(1, 0.2)
		xTr, yTr, _, _ := d.Subset(trainIdx)
		xTe, yTe, _, _ := d.Subset(testIdx)
		start := time.Now()
		f, err := forest.FitForest(xTr, yTr, forest.Options{Seed: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		pred, err := f.Predict(xTe)
		if err != nil {
			t.Fatal(err)
		}
		mae, _ := metrics.MAE(pred, yTe)
		return elapsed, mae
	}
	origTime, origMAE := fit(original)
	redTime, redMAE := fit(reduced)
	if redTime >= origTime {
		t.Errorf("reduced training (%v) should beat original (%v)", redTime, origTime)
	}
	// Bounded accuracy change: within 2x of the original MAE is a loose but
	// crash-proof bound; in practice aggregation often improves it.
	if redMAE > 2*origMAE {
		t.Errorf("reduced MAE %v blew past original %v", redMAE, origMAE)
	}
}

// TestIntegrationSamplingLosesAutocorrelation is §I's motivating claim: the
// sampled dataset represents the original cells far worse than the
// re-partitioned one (IFL) and degrades a spatial model more.
func TestIntegrationSamplingLosesAutocorrelation(t *testing.T) {
	ds := datagen.TaxiTripsUni(7, 28, 28)
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	sam, err := sampling.Reduce(ds.Grid, rp.ValidGroups())
	if err != nil {
		t.Fatal(err)
	}
	if sam.IFL <= rp.IFL {
		t.Errorf("sampling IFL %v should exceed re-partitioning IFL %v at matched counts", sam.IFL, rp.IFL)
	}
}

// TestIntegrationAutocorrelationSurvivesReduction: the re-partitioned
// dataset's adjacency still carries positive spatial autocorrelation —
// the property sampling destroys and the framework is named for.
func TestIntegrationAutocorrelationSurvivesReduction(t *testing.T) {
	ds := datagen.EarningsUni(11, 28, 28)
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rp.TrainingData(0, ds.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	w := weights.New(data.Neighbors)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-cell density (sum split) is the autocorrelated quantity.
	dens := make([]float64, data.Len())
	for i, y := range data.Y {
		dens[i] = y / float64(data.GroupSize[i])
	}
	mi, err := w.MoransI(dens)
	if err != nil {
		t.Fatal(err)
	}
	if mi < 0.2 {
		t.Errorf("Moran's I after reduction = %v, want clearly positive", mi)
	}
}

// TestIntegrationLagModelOnReducedData: a spatial econometric model fits the
// reduced dataset end to end through the public adjacency machinery.
func TestIntegrationLagModelOnReducedData(t *testing.T) {
	ds := datagen.TaxiTripsMulti(13, 28, 28)
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.05, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rp.TrainingData(ds.TargetAttr, ds.Bounds)
	if err != nil {
		t.Fatal(err)
	}
	w := weights.New(data.Neighbors)
	m, err := regress.FitLag(data.X, data.Y, w)
	if err != nil {
		t.Fatal(err)
	}
	lagY, err := w.Lag(data.Y)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(data.X, lagY)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := metrics.PseudoR2(pred, data.Y)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.5 {
		t.Errorf("in-sample R² = %v, want a competent fit", r2)
	}
}

// TestIntegrationHomogeneousUnusable: the §III-D naïve variant overshoots
// the loss thresholds the framework operates at (Table V's conclusion).
func TestIntegrationHomogeneousUnusable(t *testing.T) {
	ds := datagen.VehiclesUni(17, 28, 28)
	hom, err := spatialrepart.Homogeneous(ds.Grid, 2, spatialrepart.MergeBoth)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hom.IFL <= 0.1 {
		t.Errorf("homogeneous 2x2 IFL = %v, want above the 0.1 budget", hom.IFL)
	}
	if rp.IFL > 0.1 {
		t.Errorf("framework IFL = %v, must stay within budget", rp.IFL)
	}
	if rp.ValidGroups() >= ds.Grid.ValidCount() {
		t.Error("framework should still reduce within the budget")
	}
}
