// Command spatialvet runs the repository's custom static-analysis suite
// (internal/analysis, DESIGN.md §3.15) over every package in the module:
//
//	go run ./cmd/spatialvet ./...
//
// It loads and type-checks the module using only the standard library
// (go/parser, go/types, go/importer), builds the module-wide call graph,
// runs the repo-specific analyzers — the per-package passes (maporder,
// lockcall, spanend, floateq, globalrand, errdrop, syncclose,
// panicsite, clockdirect, goroleak, atomicmix) and the interprocedural ones
// (lockorder, ctxflow) — and prints one "file:line:col: analyzer:
// message" line per finding. -json emits the findings as a JSON array,
// -sarif as a SARIF 2.1.0 log for code-scanning uploads; both are
// byte-deterministic across runs of the same tree.
//
// Exit status: 0 on a clean tree, 1 when findings remain, 2 on usage,
// load, or type-check errors.
//
// Findings are suppressed in source with a justified directive:
//
//	//spatialvet:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. Misused
// directives (unknown analyzer, missing reason) are themselves
// findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spatialrepart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("spatialvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: spatialvet [-list] [-json|-sarif] [packages]\n\n")
		fmt.Fprintf(stderr, "Analyzes the Go module containing the current directory. Package\n")
		fmt.Fprintf(stderr, "arguments are ./-relative path patterns (a trailing /... matches the\n")
		fmt.Fprintf(stderr, "subtree); with no arguments, or with ./..., the whole module is vetted.\n\n")
		fmt.Fprintf(stderr, "Exit status: 0 on a clean tree, 1 when findings remain, 2 on usage,\n")
		fmt.Fprintf(stderr, "load, or type-check errors.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "spatialvet: -json and -sarif are mutually exclusive")
		fs.Usage()
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "spatialvet:", err)
		return 2
	}
	pkgs, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "spatialvet:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, root, fs.Args())
	diags := analysis.RunAnalyzers(pkgs, analysis.Analyzers(), analysis.DefaultConfig())

	switch {
	case *jsonOut:
		if err := writeJSON(stdout, analysis.JSONDiagnostics(diags, relTo(root))); err != nil {
			fmt.Fprintln(stderr, "spatialvet:", err)
			return 2
		}
	case *sarifOut:
		if err := writeJSON(stdout, analysis.SARIF(diags, analysis.Analyzers(), relTo(root))); err != nil {
			fmt.Fprintln(stderr, "spatialvet:", err)
			return 2
		}
	default:
		cwd, err := os.Getwd()
		if err != nil {
			cwd = "" // fall back to absolute paths in the report
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "spatialvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relTo maps an absolute filename to a module-root-relative slash path
// (the stable URI form -json and -sarif emit); files outside the module
// keep their absolute path.
func relTo(root string) func(string) string {
	return func(file string) string {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return file
	}
}

// writeJSON encodes v indented to w with a trailing newline.
func writeJSON(w *os.File, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// filterPackages keeps the packages matching the ./-relative patterns.
// No patterns, or any "./..."/"..." pattern, keeps everything.
func filterPackages(pkgs []*analysis.Package, root string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	type matcher struct {
		prefix  string // cleaned relative dir ("" = module root)
		subtree bool
	}
	var ms []matcher
	for _, p := range patterns {
		p = filepath.ToSlash(p)
		sub := false
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			sub = true
			p = strings.TrimSuffix(rest, "/")
		}
		p = strings.TrimPrefix(p, "./")
		if p == "." {
			p = ""
		}
		if p == "" && sub {
			return pkgs
		}
		ms = append(ms, matcher{prefix: p, subtree: sub})
	}
	var kept []*analysis.Package
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		for _, m := range ms {
			if rel == m.prefix || (m.subtree && strings.HasPrefix(rel, m.prefix+"/")) {
				kept = append(kept, pkg)
				break
			}
		}
	}
	return kept
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
