package main

import (
	"os"
	"strings"
	"testing"

	"spatialrepart/internal/analysis"
)

// capture runs fn with a temp file and returns what was written to it.
func capture(t *testing.T, fn func(f *os.File)) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fn(f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRepositoryIsClean is the acceptance gate: the suite must exit 0
// over the repository's own tree — every real finding fixed or
// suppressed with a justification.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr string
	var code int
	stdout = capture(t, func(out *os.File) {
		stderr = capture(t, func(errf *os.File) {
			code = run([]string{"./..."}, out, errf)
		})
	})
	if code != 0 {
		t.Errorf("spatialvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestListFlag(t *testing.T) {
	var code int
	stdout := capture(t, func(out *os.File) {
		stderr := capture(t, func(errf *os.File) {
			code = run([]string{"-list"}, out, errf)
		})
		_ = stderr
	})
	if code != 0 {
		t.Fatalf("spatialvet -list = exit %d, want 0", code)
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var code int
	capture(t, func(out *os.File) {
		capture(t, func(errf *os.File) {
			code = run([]string{"-nosuchflag"}, out, errf)
		})
	})
	if code != 2 {
		t.Errorf("spatialvet -nosuchflag = exit %d, want 2", code)
	}
}
