package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialrepart/internal/analysis"
)

// capture runs fn with a temp file and returns what was written to it.
func capture(t *testing.T, fn func(f *os.File)) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fn(f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRepositoryIsClean is the acceptance gate: the suite must exit 0
// over the repository's own tree — every real finding fixed or
// suppressed with a justification.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr string
	var code int
	stdout = capture(t, func(out *os.File) {
		stderr = capture(t, func(errf *os.File) {
			code = run([]string{"./..."}, out, errf)
		})
	})
	if code != 0 {
		t.Errorf("spatialvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

func TestListFlag(t *testing.T) {
	var code int
	stdout := capture(t, func(out *os.File) {
		stderr := capture(t, func(errf *os.File) {
			code = run([]string{"-list"}, out, errf)
		})
		_ = stderr
	})
	if code != 0 {
		t.Fatalf("spatialvet -list = exit %d, want 0", code)
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestBadFlag(t *testing.T) {
	var code int
	capture(t, func(out *os.File) {
		capture(t, func(errf *os.File) {
			code = run([]string{"-nosuchflag"}, out, errf)
		})
	})
	if code != 2 {
		t.Errorf("spatialvet -nosuchflag = exit %d, want 2", code)
	}
}

func TestJSONSarifExclusive(t *testing.T) {
	var code int
	capture(t, func(out *os.File) {
		capture(t, func(errf *os.File) {
			code = run([]string{"-json", "-sarif"}, out, errf)
		})
	})
	if code != 2 {
		t.Errorf("spatialvet -json -sarif = exit %d, want 2", code)
	}
}

// runInModule writes files into a fresh temp module, chdirs there, and
// runs spatialvet with args.
func runInModule(t *testing.T, files map[string]string, args ...string) (code int, stdout string) {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	stdout = capture(t, func(out *os.File) {
		capture(t, func(errf *os.File) {
			code = run(args, out, errf)
		})
	})
	return code, stdout
}

// TestExitCodeTypeError pins exit 2 on a module that fails to
// type-check: load errors and findings must stay distinguishable.
func TestExitCodeTypeError(t *testing.T) {
	code, _ := runInModule(t, map[string]string{
		"main.go": "package main\n\nfunc main() { var x int = \"not an int\"; _ = x }\n",
	})
	if code != 2 {
		t.Errorf("type error = exit %d, want 2", code)
	}
}

// TestExitCodeFindings pins exit 1 when the tree loads cleanly but
// analyzers (here: the directive audit) report findings.
func TestExitCodeFindings(t *testing.T) {
	code, _ := runInModule(t, map[string]string{
		"main.go": "package main\n\n//spatialvet:ignore nosuchanalyzer because\nfunc main() {}\n",
	})
	if code != 1 {
		t.Errorf("finding = exit %d, want 1", code)
	}
}

// TestJSONFindings checks the -json shape on a module with one known
// finding.
func TestJSONFindings(t *testing.T) {
	code, stdout := runInModule(t, map[string]string{
		"main.go": "package main\n\n//spatialvet:ignore nosuchanalyzer because\nfunc main() {}\n",
	}, "-json")
	if code != 1 {
		t.Fatalf("-json with a finding = exit %d, want 1", code)
	}
	var diags []analysis.JSONDiagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	if len(diags) != 1 || diags[0].Analyzer != "directive" || diags[0].File != "main.go" {
		t.Errorf("unexpected -json findings: %+v", diags)
	}
}

// TestSARIFRepository runs -sarif over the repository itself: the log
// must parse back through encoding/json with rule metadata for every
// analyzer, and — the tree being clean — zero results.
func TestSARIFRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var code int
	stdout := capture(t, func(out *os.File) {
		capture(t, func(errf *os.File) {
			code = run([]string{"-sarif", "./..."}, out, errf)
		})
	})
	if code != 0 {
		t.Fatalf("spatialvet -sarif ./... = exit %d, want 0\n%s", code, stdout)
	}
	var log analysis.SarifLog
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	if want := len(analysis.Analyzers()) + 1; len(log.Runs[0].Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(log.Runs[0].Tool.Driver.Rules), want)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("repository tree should be clean, got %d results", len(log.Runs[0].Results))
	}
}

// TestJSONDeterministic runs -json twice over the repository and
// requires byte-identical output — the same property CI checks.
func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module twice")
	}
	runOnce := func() (int, string) {
		var code int
		stdout := capture(t, func(out *os.File) {
			capture(t, func(errf *os.File) {
				code = run([]string{"-json", "./..."}, out, errf)
			})
		})
		return code, stdout
	}
	c1, o1 := runOnce()
	c2, o2 := runOnce()
	if c1 != c2 || o1 != o2 {
		t.Errorf("two -json runs differ: exit %d vs %d\n--- run 1\n%s\n--- run 2\n%s", c1, c2, o1, o2)
	}
}
