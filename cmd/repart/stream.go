package main

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spatialrepart"
	"spatialrepart/internal/cluster"
	"spatialrepart/internal/grid"
	"spatialrepart/internal/render"
	"spatialrepart/internal/stream"
)

// streamConfig carries the parsed flags of the streaming ingest mode
// (-stream-records): raw point records are folded into a stream.Repartitioner
// whose aggregate state survives restarts via -checkpoint.
type streamConfig struct {
	records         string // raw records CSV (lat,lon,v1,…,vp)
	attrsSpec       string // attribute spec, e.g. "count:sum:int,price:avg,kind:avg:cat"
	rows, cols      int
	bbox            string
	threshold       float64
	schedule        string
	workers         int
	checkpoint      string // checkpoint file: restored at start if present, written at exit
	checkpointEvery int    // additionally checkpoint every n accepted records (0 = final only)
	shard           string // "i/n": serve row band i of an n-shard cluster (see -cluster)

	out, groupsOut, adjOut, geoOut, partOut, reportOut string
	stats, render                                      bool
	obsv                                               *spatialrepart.Observer

	// serveAddr, when non-empty, keeps the process alive after ingest,
	// serving the current view over HTTP (internal/server) until stop.
	serveAddr    string
	drainTimeout time.Duration
	logger       *slog.Logger      // defaults to a stderr text logger
	serveReady   func(addr string) // test hook: receives the bound address
	serveStop    <-chan struct{}   // test hook: nil means SIGTERM/SIGINT
}

// parseStreamAttrs parses the -stream-attrs spec: comma-separated attributes,
// each "name:agg[:int][:cat]" with agg ∈ {sum, avg, average}.
func parseStreamAttrs(spec string) ([]grid.Attribute, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-stream-attrs is required (e.g. \"count:sum:int,price:avg\")")
	}
	var attrs []grid.Attribute
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("attribute %q: want name:sum|avg[:int][:cat]", field)
		}
		a := grid.Attribute{Name: parts[0]}
		switch parts[1] {
		case "sum":
			a.Agg = grid.Sum
		case "avg", "average":
			a.Agg = grid.Average
		default:
			return nil, fmt.Errorf("attribute %q: unknown aggregation %q", field, parts[1])
		}
		for _, flagPart := range parts[2:] {
			switch flagPart {
			case "int":
				a.Integer = true
			case "cat":
				a.Categorical = true
			default:
				return nil, fmt.Errorf("attribute %q: unknown flag %q", field, flagPart)
			}
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// runStream ingests raw records into a streaming repartitioner — restoring a
// prior checkpoint first when one exists — and writes the served partition
// through the same output writers as the batch mode.
func runStream(cfg streamConfig) error {
	attrs, err := parseStreamAttrs(cfg.attrsSpec)
	if err != nil {
		return err
	}
	bounds, err := parseBounds(cfg.bbox)
	if err != nil {
		return err
	}
	opts := stream.Options{
		Threshold: cfg.threshold,
		Workers:   cfg.workers,
	}
	if cfg.obsv != nil {
		opts.Obs = cfg.obsv
	}
	switch cfg.schedule {
	case "exact":
		opts.Schedule = spatialrepart.ScheduleExact
	case "geometric":
		opts.Schedule = spatialrepart.ScheduleGeometric
	default:
		return fmt.Errorf("unknown schedule %q", cfg.schedule)
	}
	// In shard-worker mode the stream covers only this worker's row band of
	// the global grid; records outside the band are dropped at ingest (the
	// cluster's ingest fan-out sends every worker the full feed, and each
	// keeps its slice). accept re-positions a record into the band-local
	// frame via the shared routing plan, so the worker's cells land on
	// exactly the global cell centers the coordinator stitches by.
	var s *stream.Repartitioner
	accept := func(rec grid.Record) (grid.Record, bool) { return rec, true }
	if cfg.shard != "" {
		index, count, serr := parseShardSpec(cfg.shard)
		if serr != nil {
			return serr
		}
		plan, perr := cluster.NewPlan(cfg.rows, cfg.cols, bounds, count)
		if perr != nil {
			return perr
		}
		s, err = cluster.NewShard(plan, index, attrs, opts)
		accept = func(rec grid.Record) (grid.Record, bool) {
			shard, local, ok := plan.Route(rec)
			if !ok || shard != index {
				return grid.Record{}, false
			}
			return local, true
		}
	} else {
		s, err = stream.New(bounds, cfg.rows, cfg.cols, attrs, opts)
	}
	if err != nil {
		return err
	}

	restored := false
	if cfg.checkpoint != "" {
		f, err := os.Open(cfg.checkpoint)
		switch {
		case err == nil:
			rerr := s.Restore(f)
			if cerr := f.Close(); rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return fmt.Errorf("restoring %s: %w", cfg.checkpoint, rerr)
			}
			restored = true
		case os.IsNotExist(err):
			// First run: nothing to restore.
		default:
			return err
		}
	}

	f, err := os.Open(cfg.records)
	if err != nil {
		return err
	}
	defer f.Close()
	sinceCheckpoint := 0
	if err := grid.ScanRecordsCSV(f, len(attrs), func(rec grid.Record) error {
		rec, ok := accept(rec)
		if !ok {
			return nil
		}
		if err := s.Add(rec); err != nil {
			return err
		}
		sinceCheckpoint++
		if cfg.checkpoint != "" && cfg.checkpointEvery > 0 && sinceCheckpoint >= cfg.checkpointEvery {
			sinceCheckpoint = 0
			return writeCheckpoint(s, cfg.checkpoint)
		}
		return nil
	}); err != nil {
		return err
	}

	v, err := s.Current()
	if err != nil {
		return err
	}
	if cfg.checkpoint != "" {
		if err := writeCheckpoint(s, cfg.checkpoint); err != nil {
			return err
		}
	}
	if cfg.stats {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "stream: accepted=%d dropped=%d recomputes=%d refreshes=%d failures=%d restored=%t\n",
			st.Accepted, st.Dropped, st.Recomputes, st.Refreshes, st.RecomputeFailures, restored)
		fmt.Fprintf(os.Stderr, "cell-groups: %d (%d non-null), IFL=%.4f, generation=%d, degraded=%t\n",
			v.NumGroups(), v.ValidGroups(), v.IFL, v.Generation, v.Degraded)
	}
	if cfg.reportOut != "" {
		rf, err := os.Create(cfg.reportOut)
		if err != nil {
			return err
		}
		defer rf.Close()
		if err := s.WriteReport(rf); err != nil {
			return fmt.Errorf("writing stream report: %w", err)
		}
	}
	if err := writeStreamOutputs(cfg, v.Repartitioned, bounds); err != nil {
		return err
	}
	if cfg.serveAddr == "" {
		return nil
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	stop := cfg.serveStop
	if stop == nil {
		stop = signalChannel()
	}
	return serveView(s, cfg.serveAddr, cfg.drainTimeout, cfg.obsv, logger, cfg.serveReady, stop)
}

// writeStreamOutputs routes the served partition through the batch-mode
// output writers.
func writeStreamOutputs(cfg streamConfig, rp *spatialrepart.Repartitioned, bounds spatialrepart.Bounds) error {
	if cfg.out != "" {
		of, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := rp.ReconstructGrid().WriteCSV(of); err != nil {
			return fmt.Errorf("writing reduced grid: %w", err)
		}
	}
	if cfg.groupsOut != "" {
		if err := writeGroups(cfg.groupsOut, rp); err != nil {
			return err
		}
	}
	if cfg.adjOut != "" {
		if err := writeAdjacency(cfg.adjOut, rp); err != nil {
			return err
		}
	}
	if cfg.geoOut != "" {
		gf, err := os.Create(cfg.geoOut)
		if err != nil {
			return err
		}
		defer gf.Close()
		if err := rp.WriteGeoJSON(gf, bounds); err != nil {
			return fmt.Errorf("writing GeoJSON: %w", err)
		}
	}
	if cfg.partOut != "" {
		pf, err := os.Create(cfg.partOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := rp.WriteJSON(pf); err != nil {
			return fmt.Errorf("writing partition JSON: %w", err)
		}
	}
	if cfg.render {
		fmt.Print(render.PartitionBorders(rp.Partition))
	}
	return nil
}

// writeCheckpoint writes the stream state to path crash-consistently via
// atomicWrite: after a crash at ANY instant the file holds either the
// previous checkpoint or the new one, never a torn mix.
func writeCheckpoint(s *stream.Repartitioner, path string) error {
	if err := atomicWrite(path, s.Checkpoint); err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	return nil
}

// atomicWrite replaces path with the bytes produced by write, surviving a
// crash at any point: the content goes to an O_EXCL temp file in the same
// directory, is fsynced to make the BYTES durable, renamed over path to make
// the SWITCH atomic, and the parent directory is fsynced to make the rename
// itself durable. Skipping the first fsync would let the rename land before
// the data (a zero-length or torn file after power loss); skipping the last
// would let a crash forget the rename ever happened.
func atomicWrite(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(werr error) error {
		tmp.Close()        //spatialvet:ignore errdrop best-effort cleanup of a failed write; the original error is the one reported
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the original error is the one reported
		return werr
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the Close error is the one reported
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed rename; the Rename error is the one reported
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-performed rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
