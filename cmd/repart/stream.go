package main

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spatialrepart"
	"spatialrepart/internal/cluster"
	"spatialrepart/internal/grid"
	"spatialrepart/internal/render"
	"spatialrepart/internal/stream"
	"spatialrepart/internal/wal"
)

// streamConfig carries the parsed flags of the streaming ingest mode
// (-stream-records): raw point records are folded into a stream.Repartitioner
// whose aggregate state survives restarts via -checkpoint.
type streamConfig struct {
	records         string // raw records CSV (lat,lon,v1,…,vp)
	attrsSpec       string // attribute spec, e.g. "count:sum:int,price:avg,kind:avg:cat"
	rows, cols      int
	bbox            string
	threshold       float64
	schedule        string
	workers         int
	checkpoint      string // checkpoint file: restored at start if present, written at exit
	checkpointEvery int    // additionally checkpoint every n accepted records (0 = final only)
	shard           string // "i/n": serve row band i of an n-shard cluster (see -cluster)

	// walDir, when non-empty, makes ingest durable: every accepted record is
	// appended to a segmented write-ahead log in this directory before it is
	// applied, and replayed on restart (after the checkpoint restore, when
	// one exists). walSync is "always", "every=N", or "interval=DUR";
	// walSegmentBytes sets the rotation size (0 = default).
	walDir          string
	walSync         string
	walSegmentBytes int64

	out, groupsOut, adjOut, geoOut, partOut, reportOut string
	stats, render                                      bool
	obsv                                               *spatialrepart.Observer

	// serveAddr, when non-empty, keeps the process alive after ingest,
	// serving the current view over HTTP (internal/server) until stop.
	serveAddr    string
	drainTimeout time.Duration
	logger       *slog.Logger      // defaults to a stderr text logger
	serveReady   func(addr string) // test hook: receives the bound address
	serveStop    <-chan struct{}   // test hook: nil means SIGTERM/SIGINT
}

// parseStreamAttrs parses the -stream-attrs spec: comma-separated attributes,
// each "name:agg[:int][:cat]" with agg ∈ {sum, avg, average}.
func parseStreamAttrs(spec string) ([]grid.Attribute, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-stream-attrs is required (e.g. \"count:sum:int,price:avg\")")
	}
	var attrs []grid.Attribute
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("attribute %q: want name:sum|avg[:int][:cat]", field)
		}
		a := grid.Attribute{Name: parts[0]}
		switch parts[1] {
		case "sum":
			a.Agg = grid.Sum
		case "avg", "average":
			a.Agg = grid.Average
		default:
			return nil, fmt.Errorf("attribute %q: unknown aggregation %q", field, parts[1])
		}
		for _, flagPart := range parts[2:] {
			switch flagPart {
			case "int":
				a.Integer = true
			case "cat":
				a.Categorical = true
			default:
				return nil, fmt.Errorf("attribute %q: unknown flag %q", field, flagPart)
			}
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// parseWALSync parses the -wal-sync policy into wal.Options fields.
func parseWALSync(policy string, o *wal.Options) error {
	switch {
	case policy == "" || policy == "always":
		o.SyncEvery = 1
	case strings.HasPrefix(policy, "every="):
		n, err := strconv.Atoi(strings.TrimPrefix(policy, "every="))
		if err != nil || n < 1 {
			return fmt.Errorf("-wal-sync %q: want every=N with N >= 1", policy)
		}
		o.SyncEvery = n
	case strings.HasPrefix(policy, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(policy, "interval="))
		if err != nil || d <= 0 {
			return fmt.Errorf("-wal-sync %q: want interval=DURATION (e.g. interval=50ms)", policy)
		}
		// Interval-driven fsync with a large batch cap: the interval is the
		// durability bound, the cap merely stops unbounded buffering.
		o.SyncEvery = 1 << 20
		o.SyncInterval = d
	default:
		return fmt.Errorf("-wal-sync %q: want always, every=N, or interval=DURATION", policy)
	}
	return nil
}

// walStamp derives the directory-identity stamp: the grid geometry plus the
// shard spec. Two shard workers pointed at one WAL directory — or one worker
// whose geometry silently changed — fail fast at Open instead of replaying
// another band's records into the wrong grid.
func walStamp(cfg streamConfig) string {
	shard := cfg.shard
	if shard == "" {
		shard = "-"
	}
	return fmt.Sprintf("rows=%d cols=%d bounds=%s attrs=%s shard=%s",
		cfg.rows, cfg.cols, cfg.bbox, cfg.attrsSpec, shard)
}

// runStream ingests raw records into a streaming repartitioner — restoring a
// prior checkpoint first when one exists, then replaying the WAL suffix —
// and writes the served partition through the same output writers as the
// batch mode.
func runStream(cfg streamConfig) error {
	attrs, err := parseStreamAttrs(cfg.attrsSpec)
	if err != nil {
		return err
	}
	bounds, err := parseBounds(cfg.bbox)
	if err != nil {
		return err
	}
	if cfg.walDir == "" && (cfg.walSync != "" && cfg.walSync != "always" || cfg.walSegmentBytes != 0) {
		return fmt.Errorf("-wal-sync/-wal-segment-bytes require -wal")
	}
	opts := stream.Options{
		Threshold: cfg.threshold,
		Workers:   cfg.workers,
	}
	if cfg.obsv != nil {
		opts.Obs = cfg.obsv
	}
	var wlog *wal.Log
	if cfg.walDir != "" {
		wopts := wal.Options{
			SegmentBytes: cfg.walSegmentBytes,
			Stamp:        walStamp(cfg),
			Obs:          cfg.obsv,
		}
		if err := parseWALSync(cfg.walSync, &wopts); err != nil {
			return err
		}
		wlog, err = wal.Open(cfg.walDir, wopts)
		if err != nil {
			return fmt.Errorf("opening wal %s: %w", cfg.walDir, err)
		}
		defer wlog.Close()
		opts.WAL = wlog
	}
	switch cfg.schedule {
	case "exact":
		opts.Schedule = spatialrepart.ScheduleExact
	case "geometric":
		opts.Schedule = spatialrepart.ScheduleGeometric
	default:
		return fmt.Errorf("unknown schedule %q", cfg.schedule)
	}
	// In shard-worker mode the stream covers only this worker's row band of
	// the global grid; records outside the band are dropped at ingest (the
	// cluster's ingest fan-out sends every worker the full feed, and each
	// keeps its slice). accept re-positions a record into the band-local
	// frame via the shared routing plan, so the worker's cells land on
	// exactly the global cell centers the coordinator stitches by.
	var s *stream.Repartitioner
	accept := func(rec grid.Record) (grid.Record, bool) { return rec, true }
	if cfg.shard != "" {
		index, count, serr := parseShardSpec(cfg.shard)
		if serr != nil {
			return serr
		}
		plan, perr := cluster.NewPlan(cfg.rows, cfg.cols, bounds, count)
		if perr != nil {
			return perr
		}
		s, err = cluster.NewShard(plan, index, attrs, opts)
		accept = func(rec grid.Record) (grid.Record, bool) {
			shard, local, ok := plan.Route(rec)
			if !ok || shard != index {
				return grid.Record{}, false
			}
			return local, true
		}
	} else {
		s, err = stream.New(bounds, cfg.rows, cfg.cols, attrs, opts)
	}
	if err != nil {
		return err
	}

	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	restored := false
	if cfg.checkpoint != "" {
		f, err := os.Open(cfg.checkpoint)
		switch {
		case err == nil:
			rerr := s.Restore(f)
			if cerr := f.Close(); rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return fmt.Errorf("restoring %s: %w", cfg.checkpoint, rerr)
			}
			restored = true
		case os.IsNotExist(err):
			// First run: nothing to restore.
		default:
			return err
		}
	}
	replayed := 0
	if wlog != nil {
		// Replay the suffix the checkpoint does not cover (everything, on a
		// run with no checkpoint): records acked by a previous process that
		// died before checkpointing come back, exactly once.
		replayed, err = s.ReplayWAL()
		if err != nil {
			return err
		}
		if replayed > 0 {
			logger.Info("wal replayed", "dir", cfg.walDir, "records", replayed)
		}
	}

	f, err := os.Open(cfg.records)
	if err != nil {
		return err
	}
	defer f.Close()
	sinceCheckpoint := 0
	if err := grid.ScanRecordsCSV(f, len(attrs), func(rec grid.Record) error {
		rec, ok := accept(rec)
		if !ok {
			return nil
		}
		if err := s.Add(rec); err != nil {
			return err
		}
		sinceCheckpoint++
		if cfg.checkpoint != "" && cfg.checkpointEvery > 0 && sinceCheckpoint >= cfg.checkpointEvery {
			sinceCheckpoint = 0
			// A failed periodic checkpoint must not abort a healthy ingest:
			// the failure is recorded (Stats.CheckpointFailures,
			// LastCheckpointErr — surfaced by /stats) and logged, and the
			// next interval retries. The final checkpoint below still fails
			// the run hard.
			if cerr := checkpointAndTruncate(s, wlog, cfg.checkpoint); cerr != nil {
				logger.Warn("periodic checkpoint failed", "path", cfg.checkpoint, "err", cerr)
			}
			return nil
		}
		return nil
	}); err != nil {
		return err
	}

	v, err := s.Current()
	if err != nil {
		return err
	}
	if cfg.checkpoint != "" {
		if err := checkpointAndTruncate(s, wlog, cfg.checkpoint); err != nil {
			return err
		}
	}
	if cfg.stats {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "stream: accepted=%d dropped=%d recomputes=%d refreshes=%d failures=%d restored=%t wal-replayed=%d\n",
			st.Accepted, st.Dropped, st.Recomputes, st.Refreshes, st.RecomputeFailures, restored, replayed)
		fmt.Fprintf(os.Stderr, "cell-groups: %d (%d non-null), IFL=%.4f, generation=%d, degraded=%t\n",
			v.NumGroups(), v.ValidGroups(), v.IFL, v.Generation, v.Degraded)
	}
	if cfg.reportOut != "" {
		if err := createFile(cfg.reportOut, func(w io.Writer) error {
			if err := s.WriteReport(w); err != nil {
				return fmt.Errorf("writing stream report: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if err := writeStreamOutputs(cfg, v.Repartitioned, bounds); err != nil {
		return err
	}
	if cfg.serveAddr == "" {
		return nil
	}
	stop := cfg.serveStop
	if stop == nil {
		stop = signalChannel()
	}
	return serveView(s, cfg.serveAddr, cfg.drainTimeout, cfg.obsv, logger, cfg.serveReady, stop)
}

// writeStreamOutputs routes the served partition through the batch-mode
// output writers.
func writeStreamOutputs(cfg streamConfig, rp *spatialrepart.Repartitioned, bounds spatialrepart.Bounds) error {
	if cfg.out != "" {
		if err := createFile(cfg.out, func(w io.Writer) error {
			if err := rp.ReconstructGrid().WriteCSV(w); err != nil {
				return fmt.Errorf("writing reduced grid: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if cfg.groupsOut != "" {
		if err := writeGroups(cfg.groupsOut, rp); err != nil {
			return err
		}
	}
	if cfg.adjOut != "" {
		if err := writeAdjacency(cfg.adjOut, rp); err != nil {
			return err
		}
	}
	if cfg.geoOut != "" {
		if err := createFile(cfg.geoOut, func(w io.Writer) error {
			if err := rp.WriteGeoJSON(w, bounds); err != nil {
				return fmt.Errorf("writing GeoJSON: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if cfg.partOut != "" {
		if err := createFile(cfg.partOut, func(w io.Writer) error {
			if err := rp.WriteJSON(w); err != nil {
				return fmt.Errorf("writing partition JSON: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if cfg.render {
		fmt.Print(render.PartitionBorders(rp.Partition))
	}
	return nil
}

// checkpointAndTruncate writes the stream state to path crash-consistently
// via atomicWrite — after a crash at ANY instant the file holds either the
// previous checkpoint or the new one, never a torn mix — records the outcome
// in the stream's durability stats, and, once the new checkpoint is durable
// (data fsynced, rename fsynced), truncates the WAL through exactly the
// sequence the checkpoint embeds. The order is load-bearing: truncating
// before the rename lands could leave a crash window with neither the
// checkpoint nor the WAL holding the records.
func checkpointAndTruncate(s *stream.Repartitioner, wlog *wal.Log, path string) error {
	var seq uint64
	err := atomicWrite(path, func(w io.Writer) error {
		var cerr error
		seq, cerr = s.CheckpointSeq(w)
		return cerr
	})
	s.RecordCheckpointResult(err)
	if err != nil {
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	if wlog != nil {
		// A reclamation failure loses nothing — the WAL only ever holds MORE
		// than a restart needs, and replay stays exactly-once by sequence —
		// so it must not fail the run; the next checkpoint retries it.
		wlog.TruncateThrough(seq) //spatialvet:ignore errdrop deliberate: truncation is best-effort reclamation, retried at the next checkpoint
	}
	return nil
}

// atomicWrite replaces path with the bytes produced by write, surviving a
// crash at any point: the content goes to an O_EXCL temp file in the same
// directory, is fsynced to make the BYTES durable, renamed over path to make
// the SWITCH atomic, and the parent directory is fsynced to make the rename
// itself durable. Skipping the first fsync would let the rename land before
// the data (a zero-length or torn file after power loss); skipping the last
// would let a crash forget the rename ever happened.
func atomicWrite(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(werr error) error {
		tmp.Close()        //spatialvet:ignore errdrop best-effort cleanup of a failed write; the original error is the one reported
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the original error is the one reported
		return werr
	}
	if err := write(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the Close error is the one reported
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName) //spatialvet:ignore errdrop best-effort cleanup of a failed rename; the Rename error is the one reported
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-performed rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
