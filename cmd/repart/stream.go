package main

import (
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"spatialrepart"
	"spatialrepart/internal/grid"
	"spatialrepart/internal/render"
	"spatialrepart/internal/stream"
)

// streamConfig carries the parsed flags of the streaming ingest mode
// (-stream-records): raw point records are folded into a stream.Repartitioner
// whose aggregate state survives restarts via -checkpoint.
type streamConfig struct {
	records         string // raw records CSV (lat,lon,v1,…,vp)
	attrsSpec       string // attribute spec, e.g. "count:sum:int,price:avg,kind:avg:cat"
	rows, cols      int
	bbox            string
	threshold       float64
	schedule        string
	workers         int
	checkpoint      string // checkpoint file: restored at start if present, written at exit
	checkpointEvery int    // additionally checkpoint every n accepted records (0 = final only)

	out, groupsOut, adjOut, geoOut, partOut, reportOut string
	stats, render                                      bool
	obsv                                               *spatialrepart.Observer

	// serveAddr, when non-empty, keeps the process alive after ingest,
	// serving the current view over HTTP (internal/server) until stop.
	serveAddr    string
	drainTimeout time.Duration
	logger       *slog.Logger      // defaults to a stderr text logger
	serveReady   func(addr string) // test hook: receives the bound address
	serveStop    <-chan struct{}   // test hook: nil means SIGTERM/SIGINT
}

// parseStreamAttrs parses the -stream-attrs spec: comma-separated attributes,
// each "name:agg[:int][:cat]" with agg ∈ {sum, avg, average}.
func parseStreamAttrs(spec string) ([]grid.Attribute, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-stream-attrs is required (e.g. \"count:sum:int,price:avg\")")
	}
	var attrs []grid.Attribute
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) < 2 || parts[0] == "" {
			return nil, fmt.Errorf("attribute %q: want name:sum|avg[:int][:cat]", field)
		}
		a := grid.Attribute{Name: parts[0]}
		switch parts[1] {
		case "sum":
			a.Agg = grid.Sum
		case "avg", "average":
			a.Agg = grid.Average
		default:
			return nil, fmt.Errorf("attribute %q: unknown aggregation %q", field, parts[1])
		}
		for _, flagPart := range parts[2:] {
			switch flagPart {
			case "int":
				a.Integer = true
			case "cat":
				a.Categorical = true
			default:
				return nil, fmt.Errorf("attribute %q: unknown flag %q", field, flagPart)
			}
		}
		attrs = append(attrs, a)
	}
	return attrs, nil
}

// runStream ingests raw records into a streaming repartitioner — restoring a
// prior checkpoint first when one exists — and writes the served partition
// through the same output writers as the batch mode.
func runStream(cfg streamConfig) error {
	attrs, err := parseStreamAttrs(cfg.attrsSpec)
	if err != nil {
		return err
	}
	bounds, err := parseBounds(cfg.bbox)
	if err != nil {
		return err
	}
	opts := stream.Options{
		Threshold: cfg.threshold,
		Workers:   cfg.workers,
	}
	if cfg.obsv != nil {
		opts.Obs = cfg.obsv
	}
	switch cfg.schedule {
	case "exact":
		opts.Schedule = spatialrepart.ScheduleExact
	case "geometric":
		opts.Schedule = spatialrepart.ScheduleGeometric
	default:
		return fmt.Errorf("unknown schedule %q", cfg.schedule)
	}
	s, err := stream.New(bounds, cfg.rows, cfg.cols, attrs, opts)
	if err != nil {
		return err
	}

	restored := false
	if cfg.checkpoint != "" {
		f, err := os.Open(cfg.checkpoint)
		switch {
		case err == nil:
			rerr := s.Restore(f)
			if cerr := f.Close(); rerr == nil {
				rerr = cerr
			}
			if rerr != nil {
				return fmt.Errorf("restoring %s: %w", cfg.checkpoint, rerr)
			}
			restored = true
		case os.IsNotExist(err):
			// First run: nothing to restore.
		default:
			return err
		}
	}

	f, err := os.Open(cfg.records)
	if err != nil {
		return err
	}
	defer f.Close()
	sinceCheckpoint := 0
	if err := grid.ScanRecordsCSV(f, len(attrs), func(rec grid.Record) error {
		if err := s.Add(rec); err != nil {
			return err
		}
		sinceCheckpoint++
		if cfg.checkpoint != "" && cfg.checkpointEvery > 0 && sinceCheckpoint >= cfg.checkpointEvery {
			sinceCheckpoint = 0
			return writeCheckpoint(s, cfg.checkpoint)
		}
		return nil
	}); err != nil {
		return err
	}

	v, err := s.Current()
	if err != nil {
		return err
	}
	if cfg.checkpoint != "" {
		if err := writeCheckpoint(s, cfg.checkpoint); err != nil {
			return err
		}
	}
	if cfg.stats {
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "stream: accepted=%d dropped=%d recomputes=%d refreshes=%d failures=%d restored=%t\n",
			st.Accepted, st.Dropped, st.Recomputes, st.Refreshes, st.RecomputeFailures, restored)
		fmt.Fprintf(os.Stderr, "cell-groups: %d (%d non-null), IFL=%.4f, generation=%d, degraded=%t\n",
			v.NumGroups(), v.ValidGroups(), v.IFL, v.Generation, v.Degraded)
	}
	if cfg.reportOut != "" {
		rf, err := os.Create(cfg.reportOut)
		if err != nil {
			return err
		}
		defer rf.Close()
		if err := s.WriteReport(rf); err != nil {
			return fmt.Errorf("writing stream report: %w", err)
		}
	}
	if err := writeStreamOutputs(cfg, v.Repartitioned, bounds); err != nil {
		return err
	}
	if cfg.serveAddr == "" {
		return nil
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	stop := cfg.serveStop
	if stop == nil {
		stop = signalChannel()
	}
	return serveView(s, cfg.serveAddr, cfg.drainTimeout, cfg.obsv, logger, cfg.serveReady, stop)
}

// writeStreamOutputs routes the served partition through the batch-mode
// output writers.
func writeStreamOutputs(cfg streamConfig, rp *spatialrepart.Repartitioned, bounds spatialrepart.Bounds) error {
	if cfg.out != "" {
		of, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer of.Close()
		if err := rp.ReconstructGrid().WriteCSV(of); err != nil {
			return fmt.Errorf("writing reduced grid: %w", err)
		}
	}
	if cfg.groupsOut != "" {
		if err := writeGroups(cfg.groupsOut, rp); err != nil {
			return err
		}
	}
	if cfg.adjOut != "" {
		if err := writeAdjacency(cfg.adjOut, rp); err != nil {
			return err
		}
	}
	if cfg.geoOut != "" {
		gf, err := os.Create(cfg.geoOut)
		if err != nil {
			return err
		}
		defer gf.Close()
		if err := rp.WriteGeoJSON(gf, bounds); err != nil {
			return fmt.Errorf("writing GeoJSON: %w", err)
		}
	}
	if cfg.partOut != "" {
		pf, err := os.Create(cfg.partOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := rp.WriteJSON(pf); err != nil {
			return fmt.Errorf("writing partition JSON: %w", err)
		}
	}
	if cfg.render {
		fmt.Print(render.PartitionBorders(rp.Partition))
	}
	return nil
}

// writeCheckpoint writes the stream state to path atomically (temp file +
// rename), so a crash mid-write never corrupts the previous checkpoint.
func writeCheckpoint(s *stream.Repartitioner, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Checkpoint(f); err != nil {
		f.Close()      //spatialvet:ignore errdrop best-effort cleanup of a failed write; the Checkpoint error is the one reported
		os.Remove(tmp) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the Checkpoint error is the one reported
		return fmt.Errorf("writing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //spatialvet:ignore errdrop best-effort cleanup of a failed write; the Close error is the one reported
		return err
	}
	return os.Rename(tmp, path)
}
