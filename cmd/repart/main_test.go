package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialrepart"
)

func writeTestGrid(t *testing.T, dir string) string {
	t.Helper()
	attrs := []spatialrepart.Attribute{{Name: "v", Agg: spatialrepart.Average}}
	g := spatialrepart.NewGrid(4, 4, attrs)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			v := 1.0
			if c >= 2 {
				v = 9
			}
			g.Set(r, c, 0, v)
		}
	}
	path := filepath.Join(dir, "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	out := filepath.Join(dir, "out.csv")
	groups := filepath.Join(dir, "groups.csv")
	adj := filepath.Join(dir, "adj.csv")
	if err := run(runConfig{in: in, out: out, groupsOut: groups, adjOut: adj, threshold: 0.1, schedule: "geometric"}); err != nil {
		t.Fatal(err)
	}
	// Reduced grid parses and matches dimensions.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := spatialrepart.ReadGridCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 4 || g.Cols != 4 {
		t.Errorf("reduced grid %dx%d", g.Rows, g.Cols)
	}
	// Groups file has a header plus at least two data rows (two value blocks).
	gb, err := os.ReadFile(groups)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(gb)), "\n")
	if len(lines) < 3 {
		t.Errorf("groups file has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "group,") {
		t.Errorf("groups header = %q", lines[0])
	}
	ab, err := os.ReadFile(adj)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ab), "group,neighbor") {
		t.Errorf("adjacency header wrong: %q", string(ab)[:20])
	}
}

func TestRunExactSchedule(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	if err := run(runConfig{in: in, threshold: 0.05, schedule: "exact"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(runConfig{threshold: 0.1, schedule: "geometric"}); err == nil {
		t.Error("want missing -in error")
	}
	if err := run(runConfig{in: "/nonexistent/file.csv", threshold: 0.1, schedule: "geometric"}); err == nil {
		t.Error("want open error")
	}
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	if err := run(runConfig{in: in, threshold: 0.1, schedule: "bogus"}); err == nil {
		t.Error("want schedule error")
	}
	if err := run(runConfig{in: in, threshold: 7, schedule: "exact"}); err == nil {
		t.Error("want threshold error")
	}
}

func TestRunGeoJSONAndRender(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	geo := filepath.Join(dir, "groups.geojson")
	if err := run(runConfig{
		in: in, geoOut: geo, threshold: 0.1, schedule: "geometric",
		bbox: "40,41,-74,-73", render: true,
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(geo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "FeatureCollection") {
		t.Error("GeoJSON output missing FeatureCollection")
	}
}

func TestParseBounds(t *testing.T) {
	b, err := parseBounds("40, 41, -74, -73")
	if err != nil {
		t.Fatal(err)
	}
	if b.MinLat != 40 || b.MaxLat != 41 || b.MinLon != -74 || b.MaxLon != -73 {
		t.Errorf("bounds = %+v", b)
	}
	if _, err := parseBounds("1,2,3"); err == nil {
		t.Error("want arity error")
	}
	if _, err := parseBounds("a,b,c,d"); err == nil {
		t.Error("want parse error")
	}
}

func TestRunReportAndObserver(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	report := filepath.Join(dir, "run.json")
	outObs := filepath.Join(dir, "out_obs.csv")
	if err := run(runConfig{
		in: in, out: outObs, reportOut: report, threshold: 0.1,
		schedule: "geometric", workers: 2, obsv: spatialrepart.NewObserver(),
	}); err != nil {
		t.Fatal(err)
	}
	var rr spatialrepart.RunReport
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rr.TotalNS <= 0 || rr.Evaluations == 0 || len(rr.Phases) == 0 {
		t.Errorf("report not populated: %+v", rr)
	}
	// The instrumented run writes the same reduced grid as a plain one.
	outPlain := filepath.Join(dir, "out_plain.csv")
	if err := run(runConfig{in: in, out: outPlain, threshold: 0.1, schedule: "geometric"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outObs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(outPlain)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("instrumented run wrote a different reduced grid")
	}
}

func TestRunPartitionJSON(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	part := filepath.Join(dir, "partition.json")
	if err := run(runConfig{in: in, partOut: part, threshold: 0.1, schedule: "geometric"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(part)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rp, err := spatialrepart.ReadRepartitionJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if rp.NumGroups() == 0 {
		t.Error("loaded partition is empty")
	}
}

// TestTraceOutEndToEnd runs a batch repartition with an observer attached and
// dumps the flight recorder via the -trace-out writer: the file must be
// well-formed Chrome trace-event JSON containing a repart.run complete event
// with rung.eval children in the same trace.
func TestTraceOutEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeTestGrid(t, dir)
	obsv := spatialrepart.NewObserver()
	if err := run(runConfig{in: in, threshold: 0.1, schedule: "geometric", obsv: obsv}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.json")
	if err := writeTraceOut(obsv, path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &tf); err != nil {
		t.Fatalf("trace-out is not well-formed JSON: %v", err)
	}
	var runTrace string
	evals := 0
	for _, e := range tf.TraceEvents {
		switch {
		case e.Name == "repart.run" && e.Ph == "X":
			runTrace = e.Args["trace_id"]
		case e.Name == "rung.eval" && e.Ph == "X":
			evals++
		}
	}
	if runTrace == "" {
		t.Fatal("trace lacks a repart.run complete event")
	}
	if evals == 0 {
		t.Fatal("trace lacks rung.eval events")
	}
}
