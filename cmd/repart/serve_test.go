package main

import (
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeViewEndToEnd runs the full serve mode in-process: stream ingest,
// HTTP serving of the computed view, then a driven stop standing in for
// SIGTERM — asserting clean drain and listener closure.
func TestServeViewEndToEnd(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 400)

	stop := make(chan struct{})
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- runStream(streamConfig{
			records: records, attrsSpec: "count:sum:int,price:avg",
			rows: 8, cols: 8, bbox: "0,10,0,10",
			threshold: 0.15, schedule: "geometric",
			serveAddr:    "127.0.0.1:0",
			drainTimeout: 5 * time.Second,
			logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
			serveReady:   func(a string) { addrCh <- a },
			serveStop:    stop,
		})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("runStream exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(base + "/view")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Generation int  `json:"generation"`
		Degraded   bool `json:"degraded"`
		Groups     int  `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || view.Groups == 0 || view.Degraded {
		t.Fatalf("view = %d %+v", resp.StatusCode, view)
	}

	resp, err = http.Get(base + "/group?id=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /group?id=0 = %d", resp.StatusCode)
	}

	// Stop: the drain must finish well within its deadline and close the
	// listener.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve mode exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete within the deadline")
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Error("listener still accepting after drain")
	}
}

// TestServeRequiresStreamMode pins the flag contract: -serve without
// -stream-records is a configuration error, reported before any work.
func TestServeRequiresStreamMode(t *testing.T) {
	// The validation lives in main's flag dispatch; replicate its check
	// against runStream's contract: an empty records path must fail fast.
	err := runStream(streamConfig{
		attrsSpec: "count:sum", rows: 4, cols: 4, bbox: "0,1,0,1",
		threshold: 0.1, schedule: "geometric", serveAddr: "127.0.0.1:0",
	})
	if err == nil {
		t.Fatal("runStream with no records accepted")
	}
}
