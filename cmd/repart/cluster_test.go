package main

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spatialrepart/internal/fault"
)

func TestParseShardSpec(t *testing.T) {
	if i, n, err := parseShardSpec("1/4"); err != nil || i != 1 || n != 4 {
		t.Fatalf("parseShardSpec(1/4) = %d,%d,%v", i, n, err)
	}
	for _, bad := range []string{"", "2", "a/b", "4/4", "-1/2", "0/0"} {
		if _, _, err := parseShardSpec(bad); err == nil {
			t.Errorf("parseShardSpec(%q): want error", bad)
		}
	}
	if s, err := parseShards(" http://a:1 , http://b:2 "); err != nil || len(s) != 2 || s[0] != "http://a:1" {
		t.Fatalf("parseShards = %v, %v", s, err)
	}
	if _, err := parseShards(" , "); err == nil {
		t.Error("parseShards of empty list: want error")
	}
}

// startShardWorker runs one `repart -stream-records ... -shard i/n -serve`
// worker in-process and returns its bound address, stop channel, and exit
// channel.
func startShardWorker(t *testing.T, records, shard string) (addr string, stop chan struct{}, done chan error) {
	t.Helper()
	stop = make(chan struct{})
	done = make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		done <- runStream(streamConfig{
			records: records, attrsSpec: "count:sum:int,price:avg",
			rows: 8, cols: 8, bbox: "0,10,0,10",
			threshold: 0.15, schedule: "geometric",
			shard:        shard,
			serveAddr:    "127.0.0.1:0",
			drainTimeout: 5 * time.Second,
			logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
			serveReady:   func(a string) { addrCh <- a },
			serveStop:    stop,
		})
	}()
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("shard worker %s exited before serving: %v", shard, err)
	case <-time.After(30 * time.Second):
		t.Fatal("shard worker never became ready")
	}
	return addr, stop, done
}

// TestRunClusterEndToEnd drives the full flag-level topology in-process: two
// -shard workers over the same record feed, fronted by a -cluster
// coordinator. The stitched view must reconcile with the per-shard views,
// and killing one worker must degrade the cluster to 200 + Warning with the
// shard reported missing — not take it down.
func TestRunClusterEndToEnd(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 400)

	addr0, stop0, done0 := startShardWorker(t, records, "0/2")
	addr1, stop1, done1 := startShardWorker(t, records, "1/2")

	stopC := make(chan struct{})
	doneC := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		doneC <- runCluster(clusterConfig{
			addr:   "127.0.0.1:0",
			shards: []string{"http://" + addr0, "http://" + addr1},
			rows:   8, cols: 8, bbox: "0,10,0,10",
			drainTimeout: 5 * time.Second,
			logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
			ready:        func(a string) { addrCh <- a },
			stop:         stopC,
		})
	}()
	var clusterAddr string
	select {
	case clusterAddr = <-addrCh:
	case err := <-doneC:
		t.Fatalf("runCluster exited before serving: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never became ready")
	}
	base := "http://" + clusterAddr

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Healthy: stitched view, and its group count reconciles with the two
	// shard views (stock shard groups never span the band border).
	resp, body := get("/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") != "" {
		t.Fatalf("healthy /view: status %d warning %q: %s", resp.StatusCode, resp.Header.Get("Warning"), body)
	}
	var view struct {
		Degraded      bool  `json:"degraded"`
		Groups        int   `json:"groups"`
		MissingShards []int `json:"missing_shards"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Degraded || view.Groups == 0 {
		t.Fatalf("healthy stitched view: %+v", view)
	}
	shardGroups := 0
	for _, a := range []string{addr0, addr1} {
		resp, err := http.Get("http://" + a + "/view")
		if err != nil {
			t.Fatal(err)
		}
		var sv struct {
			Groups int `json:"groups"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		shardGroups += sv.Groups
	}
	if view.Groups != shardGroups {
		t.Fatalf("stitched groups %d != sum of shard groups %d", view.Groups, shardGroups)
	}
	resp, body = get("/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /readyz: status %d: %s", resp.StatusCode, body)
	}

	// Kill worker 1 (graceful here; the chaos suite covers hard kills). The
	// cluster must keep serving shard 0's band, degraded and explicit.
	close(stop1)
	select {
	case err := <-done1:
		if err != nil {
			t.Fatalf("shard worker 1 exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shard worker 1 never drained")
	}
	resp, body = get("/view")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Warning") == "" {
		t.Fatalf("degraded /view: status %d warning %q: %s", resp.StatusCode, resp.Header.Get("Warning"), body)
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if !view.Degraded || len(view.MissingShards) != 1 || view.MissingShards[0] != 1 {
		t.Fatalf("degraded stitched view: %+v", view)
	}
	resp, body = get("/readyz")
	var rb struct {
		Ready    bool `json:"ready"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !rb.Ready || !rb.Degraded {
		t.Fatalf("degraded /readyz: status %d body %s", resp.StatusCode, body)
	}

	// Clean shutdown of the coordinator, then the surviving worker.
	close(stopC)
	select {
	case err := <-doneC:
		if err != nil {
			t.Fatalf("runCluster exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never drained")
	}
	close(stop0)
	select {
	case err := <-done0:
		if err != nil {
			t.Fatalf("shard worker 0 exited with: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shard worker 0 never drained")
	}
}

// TestShardWorkerIngestFiltersBand: a -shard worker ingests only its own row
// band; two complementary workers accept every record between them.
func TestShardWorkerIngestFiltersBand(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 200)

	accepted := func(shard string) int {
		report := filepath.Join(dir, "report-"+strings.ReplaceAll(shard, "/", "-")+".json")
		if err := runStream(streamConfig{
			records: records, attrsSpec: "count:sum:int,price:avg",
			rows: 8, cols: 8, bbox: "0,10,0,10",
			threshold: 0.15, schedule: "geometric",
			shard: shard, reportOut: report,
		}); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		var rep struct {
			Accepted int `json:"accepted"`
		}
		b, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Accepted
	}
	a0, a1 := accepted("0/2"), accepted("1/2")
	if a0 == 0 || a1 == 0 {
		t.Fatalf("a band saw no records: %d / %d", a0, a1)
	}
	if a0+a1 != 200 {
		t.Fatalf("bands accepted %d+%d records, want all 200", a0, a1)
	}

	// A bad shard spec fails fast.
	if err := runStream(streamConfig{
		records: records, attrsSpec: "count:sum:int,price:avg",
		rows: 8, cols: 8, bbox: "0,10,0,10",
		threshold: 0.15, schedule: "geometric", shard: "9/2",
	}); err == nil {
		t.Fatal("out-of-range -shard accepted")
	}
}

// TestAtomicWriteCrashConsistency drives atomicWrite's failure path with an
// injected mid-write fault: the previous checkpoint must survive untouched
// and no temp file may be left behind.
func TestAtomicWriteCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	const v1 = "good checkpoint v1"
	if err := atomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, v1)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	inj := fault.New(7)
	inj.Set("checkpoint.write", fault.Plan{Count: 1, Err: errors.New("injected disk failure")})
	err := atomicWrite(path, func(w io.Writer) error {
		if _, werr := io.WriteString(w, "torn half-written v2"); werr != nil {
			return werr
		}
		return inj.Hit("checkpoint.write")
	})
	if err == nil || !strings.Contains(err.Error(), "injected disk failure") {
		t.Fatalf("atomicWrite error = %v, want the injected fault", err)
	}
	if _, fired := inj.Stats("checkpoint.write"); fired != 1 {
		t.Fatalf("injector fired %d times, want 1", fired)
	}

	b, rerr := os.ReadFile(path)
	if rerr != nil || string(b) != v1 {
		t.Fatalf("previous checkpoint did not survive: %q, %v", b, rerr)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("leftover files after failed write: %v", names)
	}

	// A successful rewrite replaces the content whole.
	const v2 = "good checkpoint v2"
	if err := atomicWrite(path, func(w io.Writer) error {
		_, err := io.WriteString(w, v2)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != v2 {
		t.Fatalf("rewrite left %q, want %q", b, v2)
	}
}
