// Command repart re-partitions a spatial grid dataset stored as CSV (the
// format produced by Grid.WriteCSV / cmd/datagen) at a given information-loss
// threshold. It writes the reduced grid (every cell replaced by its group's
// representative value, §III-C), and optionally the cell→group map, the
// group adjacency list, the full partition as reloadable JSON, a GeoJSON
// FeatureCollection of the cell-groups, and an ASCII rendering.
//
// Usage:
//
//	repart -in grid.csv -threshold 0.05 -out reduced.csv \
//	       [-groups groups.csv] [-adjacency adj.csv] \
//	       [-partition partition.json] \
//	       [-geojson groups.geojson -bounds minLat,maxLat,minLon,maxLon] \
//	       [-schedule exact|geometric] [-workers n] [-render] [-stats] \
//	       [-report run.json] [-metrics-addr :8080] [-trace-out trace.json] \
//	       [-version]
//
// Streaming mode ingests raw point records (header + "lat,lon,v1,…,vp" rows)
// instead of a pre-aggregated grid, and can persist its aggregate state
// across runs via a crash-safe checkpoint file:
//
//	repart -stream-records points.csv -stream-attrs "count:sum:int,price:avg" \
//	       -stream-rows 32 -stream-cols 32 -bounds 40,41,-74,-73 \
//	       -threshold 0.05 [-checkpoint state.ckpt] [-checkpoint-every 10000] \
//	       [-wal waldir] [-wal-sync always|every=N|interval=DUR] \
//	       [-wal-segment-bytes n] \
//	       [-out reduced.csv] [-report stream.json] [...]
//
// With -wal, every accepted record is appended to a segmented write-ahead
// log before it is applied, so a crash between checkpoints loses nothing:
// restart restores the checkpoint (if any) and replays the WAL suffix,
// exactly once by sequence. Each checkpoint truncates the log prefix it
// covers. Shard workers must use distinct WAL directories — the directory
// is stamped with the grid geometry and shard spec and cross-wiring fails
// fast at open.
//
// Serve mode (-serve, streaming only) keeps the process alive after ingest,
// exposing the current view over a load-shedding HTTP front end (/healthz,
// /readyz, /view, /group, /cell, /stats) until SIGTERM/SIGINT, then drains
// in-flight requests gracefully within -drain-timeout:
//
//	repart -stream-records points.csv ... -serve :8080 [-drain-timeout 10s]
//
// Cluster mode shards the grid into horizontal row bands served by
// independent worker processes and fronts them with a stateless, resilient
// coordinator (per-shard circuit breakers, retries, optional hedged reads,
// partial 200+Warning results when shards are down):
//
//	repart -stream-records points.csv ... -shard 0/2 -serve :8081 &
//	repart -stream-records points.csv ... -shard 1/2 -serve :8082 &
//	repart -cluster :8080 -shards http://localhost:8081,http://localhost:8082 \
//	       -stream-rows 32 -stream-cols 32 -bounds 40,41,-74,-73 [-hedge]
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"spatialrepart"
	"spatialrepart/internal/obs"
	"spatialrepart/internal/render"
)

func main() {
	in := flag.String("in", "", "input grid CSV (required)")
	out := flag.String("out", "", "output CSV for the reconstructed reduced grid")
	groupsOut := flag.String("groups", "", "output CSV for the cell-group map (group id, bounds, size)")
	adjOut := flag.String("adjacency", "", "output CSV for the group adjacency list")
	geoOut := flag.String("geojson", "", "output GeoJSON FeatureCollection of the cell-groups")
	partOut := flag.String("partition", "", "output JSON with the full partition + features (loadable via ReadRepartitionJSON)")
	reportOut := flag.String("report", "", "output JSON with the instrumented run report (per-phase timings, IFL trajectory)")
	threshold := flag.Float64("threshold", 0.05, "information-loss threshold θ ∈ [0,1]")
	schedule := flag.String("schedule", "geometric", "iteration schedule: exact|geometric")
	workers := flag.Int("workers", 0, "goroutines for the ladder search (0 = all cores, 1 = sequential; results are identical)")
	stats := flag.Bool("stats", true, "print summary statistics to stderr")
	doRender := flag.Bool("render", false, "print an ASCII rendering of the partition to stdout")
	bbox := flag.String("bounds", "0,1,0,1", "geographic bounds for -geojson as minLat,maxLat,minLon,maxLon")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces and /debug/pprof on this address while running")
	traceOut := flag.String("trace-out", "", "write recorded spans as Chrome trace-event JSON (loadable in Perfetto/chrome://tracing) at exit")
	version := flag.Bool("version", false, "print build information and exit")
	streamRecords := flag.String("stream-records", "", "streaming mode: ingest raw records CSV (lat,lon,v1,…,vp) instead of -in")
	streamAttrs := flag.String("stream-attrs", "", "streaming mode: attribute spec name:sum|avg[:int][:cat],…")
	streamRows := flag.Int("stream-rows", 32, "streaming mode: grid rows")
	streamCols := flag.Int("stream-cols", 32, "streaming mode: grid columns")
	checkpoint := flag.String("checkpoint", "", "streaming mode: state file — restored at start if present, written atomically at exit")
	checkpointEvery := flag.Int("checkpoint-every", 0, "streaming mode: additionally checkpoint every n ingested records (0 = final only)")
	walDir := flag.String("wal", "", "streaming mode: write-ahead-log directory — every accepted record is logged before it is applied, and replayed on restart (zero acked-record loss)")
	walSync := flag.String("wal-sync", "always", "WAL sync policy: always | every=N | interval=DURATION (durability lags by at most N-1 records or DURATION)")
	walSegmentBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 4 MiB)")
	serveAddr := flag.String("serve", "", "streaming mode: after ingest, serve the current view over HTTP on this address until SIGTERM/SIGINT")
	drainTimeout := flag.Duration("drain-timeout", defaultDrainTimeout, "serve mode: graceful drain deadline on shutdown")
	shardSpec := flag.String("shard", "", "streaming mode: serve row band i of an n-shard cluster as \"i/n\" (geometry from -stream-rows/-stream-cols/-bounds)")
	clusterAddr := flag.String("cluster", "", "cluster mode: serve a stateless coordinator on this address over the -shards backends")
	shardsList := flag.String("shards", "", "cluster mode: comma-separated shard base URLs, one per row band, in band order")
	hedge := flag.Bool("hedge", false, "cluster mode: hedge slow shard reads after the backend's observed p99 latency")
	flag.Parse()

	if *version {
		fmt.Println("repart", obs.Version())
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	logger.Info("repart starting", "version", obs.Version(),
		"in", *in, "threshold", *threshold, "schedule", *schedule, "workers", *workers)

	var obsv *spatialrepart.Observer
	if *metricsAddr != "" || *traceOut != "" {
		obsv = spatialrepart.NewObserver()
	}
	if *metricsAddr != "" {
		_, addr, err := obs.ServeObserver(*metricsAddr, obsv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repart:", err)
			os.Exit(1)
		}
		logger.Info("metrics endpoint up", "addr", addr)
	}

	var err error
	if *clusterAddr != "" {
		var shards []string
		if *streamRecords != "" || *in != "" {
			err = fmt.Errorf("-cluster is a pure coordinator: it takes no -in/-stream-records (start shard workers separately with -shard)")
		} else if shards, err = parseShards(*shardsList); err == nil {
			err = runCluster(clusterConfig{
				addr: *clusterAddr, shards: shards,
				rows: *streamRows, cols: *streamCols, bbox: *bbox,
				hedge: *hedge, drainTimeout: *drainTimeout,
				obsv: obsv, logger: logger,
			})
		}
	} else if *shardsList != "" || *hedge {
		err = fmt.Errorf("-shards/-hedge require -cluster")
	} else if *streamRecords != "" {
		err = runStream(streamConfig{
			records: *streamRecords, attrsSpec: *streamAttrs,
			rows: *streamRows, cols: *streamCols, bbox: *bbox,
			threshold: *threshold, schedule: *schedule, workers: *workers,
			checkpoint: *checkpoint, checkpointEvery: *checkpointEvery, shard: *shardSpec,
			walDir: *walDir, walSync: *walSync, walSegmentBytes: *walSegmentBytes,
			out: *out, groupsOut: *groupsOut, adjOut: *adjOut, geoOut: *geoOut,
			partOut: *partOut, reportOut: *reportOut,
			stats: *stats, render: *doRender, obsv: obsv,
			serveAddr: *serveAddr, drainTimeout: *drainTimeout, logger: logger,
		})
	} else if *shardSpec != "" {
		err = fmt.Errorf("-shard requires -stream-records (a shard worker is a streaming ingest over its row band)")
	} else if *checkpoint != "" || *checkpointEvery != 0 {
		err = fmt.Errorf("-checkpoint/-checkpoint-every require -stream-records")
	} else if *walDir != "" {
		err = fmt.Errorf("-wal requires -stream-records (the write-ahead log makes streaming ingest durable)")
	} else if *walSync != "always" || *walSegmentBytes != 0 {
		err = fmt.Errorf("-wal-sync/-wal-segment-bytes require -wal")
	} else if *serveAddr != "" {
		err = fmt.Errorf("-serve requires -stream-records (the served view comes from streaming ingest)")
	} else {
		err = run(runConfig{
			in: *in, out: *out, groupsOut: *groupsOut, adjOut: *adjOut, geoOut: *geoOut,
			partOut: *partOut, reportOut: *reportOut, threshold: *threshold,
			schedule: *schedule, workers: *workers, stats: *stats,
			render: *doRender, bbox: *bbox, obsv: obsv,
		})
	}
	if *traceOut != "" {
		// Written even after a failed run: the flight recorder is often most
		// useful exactly when something went wrong.
		if werr := writeTraceOut(obsv, *traceOut); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repart:", err)
		os.Exit(1)
	}
}

// writeTraceOut dumps the observer's flight recorder as Chrome trace-event
// JSON, the format Perfetto and chrome://tracing load directly.
func writeTraceOut(obsv *spatialrepart.Observer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obsv.Flight().WriteTrace(f); err != nil {
		f.Close() //spatialvet:ignore errdrop best-effort cleanup of a failed write; the WriteTrace error is the one reported
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	return f.Close()
}

// runConfig carries the parsed flags.
type runConfig struct {
	in, out, groupsOut, adjOut, geoOut, partOut string
	reportOut                                   string
	threshold                                   float64
	schedule                                    string
	workers                                     int
	stats, render                               bool
	bbox                                        string
	// obsv, when non-nil, receives the run's metrics (shared with the
	// -metrics-addr endpoint).
	obsv *spatialrepart.Observer
}

func run(cfg runConfig) error {
	in, out, groupsOut, adjOut := cfg.in, cfg.out, cfg.groupsOut, cfg.adjOut
	threshold, schedule, stats := cfg.threshold, cfg.schedule, cfg.stats
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := spatialrepart.ReadGridCSV(f)
	if err != nil {
		return err
	}

	opts := spatialrepart.Options{Threshold: threshold, Workers: cfg.workers, Obs: cfg.obsv}
	switch schedule {
	case "exact":
		opts.Schedule = spatialrepart.ScheduleExact
	case "geometric":
		opts.Schedule = spatialrepart.ScheduleGeometric
	default:
		return fmt.Errorf("unknown schedule %q", schedule)
	}

	var rp *spatialrepart.Repartitioned
	if cfg.reportOut != "" {
		var report *spatialrepart.RunReport
		rp, report, err = spatialrepart.RepartitionWithReport(g, opts)
		if err != nil {
			return err
		}
		if err := createFile(cfg.reportOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				return fmt.Errorf("writing run report: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	} else {
		rp, err = spatialrepart.Repartition(g, opts)
		if err != nil {
			return err
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr, "input: %s\n", g)
		fmt.Fprintf(os.Stderr, "cell-groups: %d (%d non-null), IFL=%.4f, min-adjacent-variation=%.6f, iterations=%d\n",
			rp.NumGroups(), rp.ValidGroups(), rp.IFL, rp.MinAdjVariation, rp.Iterations)
	}

	if out != "" {
		if err := createFile(out, func(w io.Writer) error {
			if err := rp.ReconstructGrid().WriteCSV(w); err != nil {
				return fmt.Errorf("writing reduced grid: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if groupsOut != "" {
		if err := writeGroups(groupsOut, rp); err != nil {
			return err
		}
	}
	if adjOut != "" {
		if err := writeAdjacency(adjOut, rp); err != nil {
			return err
		}
	}
	if cfg.geoOut != "" {
		b, err := parseBounds(cfg.bbox)
		if err != nil {
			return err
		}
		if err := createFile(cfg.geoOut, func(w io.Writer) error {
			if err := rp.WriteGeoJSON(w, b); err != nil {
				return fmt.Errorf("writing GeoJSON: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if cfg.partOut != "" {
		if err := createFile(cfg.partOut, func(w io.Writer) error {
			if err := rp.WriteJSON(w); err != nil {
				return fmt.Errorf("writing partition JSON: %w", err)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if cfg.render {
		fmt.Print(render.PartitionBorders(rp.Partition))
	}
	return nil
}

// parseBounds parses "minLat,maxLat,minLon,maxLon".
func parseBounds(s string) (spatialrepart.Bounds, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return spatialrepart.Bounds{}, fmt.Errorf("bounds %q: want minLat,maxLat,minLon,maxLon", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return spatialrepart.Bounds{}, fmt.Errorf("bounds %q: %w", s, err)
		}
		vals[i] = v
	}
	return spatialrepart.Bounds{MinLat: vals[0], MaxLat: vals[1], MinLon: vals[2], MaxLon: vals[3]}, nil
}

// createFile creates path, streams body into it, and propagates the
// Close error a deferred Close would drop: a written file's write-back
// failure (ENOSPC, EIO) often surfaces only at Close, and an output
// reported as written must actually have reached the filesystem.
func createFile(path string, body func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = body(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("closing %s: %w", path, cerr)
	}
	return err
}

func writeGroups(path string, rp *spatialrepart.Repartitioned) error {
	return createFile(path, func(out io.Writer) error {
		w := csv.NewWriter(out)
		if err := w.Write([]string{"group", "row_begin", "row_end", "col_begin", "col_end", "size", "null"}); err != nil {
			return err
		}
		for gi, cg := range rp.Partition.Groups {
			rec := []string{
				strconv.Itoa(gi),
				strconv.Itoa(cg.RBeg), strconv.Itoa(cg.REnd),
				strconv.Itoa(cg.CBeg), strconv.Itoa(cg.CEnd),
				strconv.Itoa(cg.Size()),
				strconv.FormatBool(cg.Null),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	})
}

func writeAdjacency(path string, rp *spatialrepart.Repartitioned) error {
	return createFile(path, func(out io.Writer) error {
		w := csv.NewWriter(out)
		if err := w.Write([]string{"group", "neighbor"}); err != nil {
			return err
		}
		for gi, nbrs := range rp.Partition.AdjacencyList() {
			for _, nb := range nbrs {
				if err := w.Write([]string{strconv.Itoa(gi), strconv.Itoa(nb)}); err != nil {
					return err
				}
			}
		}
		w.Flush()
		return w.Error()
	})
}
