package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialrepart"
	"spatialrepart/internal/cluster"
	"spatialrepart/internal/obs"
)

// clusterConfig carries the parsed flags of the coordinator mode (-cluster):
// a stateless front door that routes and scatter-gathers over the shard
// workers named by -shards.
type clusterConfig struct {
	addr   string   // coordinator listen address
	shards []string // shard base URLs, one per row band, in band order
	rows   int      // global grid rows (must match the workers' -stream-rows)
	cols   int      // global grid columns
	bbox   string   // global bounds (must match the workers' -bounds)
	hedge  bool     // enable p99-derived hedged shard reads

	drainTimeout time.Duration
	obsv         *spatialrepart.Observer
	logger       *slog.Logger      // defaults to a stderr text logger
	ready        func(addr string) // test hook: receives the bound address
	stop         <-chan struct{}   // test hook: nil means SIGTERM/SIGINT
}

// parseShards splits the -shards list into backend base URLs.
func parseShards(spec string) ([]string, error) {
	var shards []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-shards is required with -cluster (comma-separated shard base URLs)")
	}
	return shards, nil
}

// parseShardSpec parses the -shard worker spec "i/n" into (index, count).
func parseShardSpec(spec string) (index, count int, err error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-shard %q: want \"i/n\" (serve band i of an n-shard cluster)", spec)
	}
	index, err = strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: %w", spec, err)
	}
	count, err = strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: %w", spec, err)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", spec, count)
	}
	return index, count, nil
}

// runCluster serves the resilient coordinator (internal/cluster) over the
// configured shard backends until stop fires, then drains gracefully within
// drainTimeout. The plan geometry must match the one the shard workers were
// started with — the coordinator routes by global cell, so a mismatch would
// silently misroute point queries.
func runCluster(cfg clusterConfig) error {
	bounds, err := parseBounds(cfg.bbox)
	if err != nil {
		return err
	}
	plan, err := cluster.NewPlan(cfg.rows, cfg.cols, bounds, len(cfg.shards))
	if err != nil {
		return err
	}
	coord, err := cluster.New(cluster.Config{
		Plan:     plan,
		Backends: cfg.shards,
		Hedge:    cfg.hedge,
		Obs:      cfg.obsv,
	})
	if err != nil {
		return err
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	drainTimeout := cfg.drainTimeout
	if drainTimeout <= 0 {
		drainTimeout = defaultDrainTimeout
	}
	sampler := obs.StartRuntimeSampler(cfg.obsv, obs.DefRuntimeSampleInterval, nil)
	defer sampler.Stop()
	bound, err := coord.Serve(cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("serving cluster coordinator", "addr", bound,
		"shards", len(cfg.shards), "rows", cfg.rows, "cols", cfg.cols, "hedge", cfg.hedge)
	if cfg.ready != nil {
		cfg.ready(bound)
	}
	stop := cfg.stop
	if stop == nil {
		stop = signalChannel()
	}
	<-stop

	logger.Info("coordinator drain started", "timeout", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := coord.Shutdown(ctx); err != nil {
		return fmt.Errorf("coordinator drain: %w", err)
	}
	logger.Info("coordinator drain complete")
	return nil
}
