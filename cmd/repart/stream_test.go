package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialrepart"
	"spatialrepart/internal/grid"
)

// writeTestRecords writes a raw records CSV: a dense field of points whose
// value steps up across the longitude midline, so the partition splits.
func writeTestRecords(t *testing.T, dir, name string, n int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("lat,lon,count,price\n")
	for i := 0; i < n; i++ {
		lat := float64(i%20)/2 + 0.25
		lon := float64((i*7)%20)/2 + 0.25
		price := 10.0
		if lon >= 5 {
			price = 90
		}
		fmt.Fprintf(&sb, "%g,%g,1,%g\n", lat, lon, price)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseStreamAttrs(t *testing.T) {
	attrs, err := parseStreamAttrs("count:sum:int, price:avg ,kind:avg:cat")
	if err != nil {
		t.Fatal(err)
	}
	want := []grid.Attribute{
		{Name: "count", Agg: grid.Sum, Integer: true},
		{Name: "price", Agg: grid.Average},
		{Name: "kind", Agg: grid.Average, Categorical: true},
	}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs", len(attrs))
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, attrs[i], want[i])
		}
	}
	for _, bad := range []string{"", "count", "count:median", "count:sum:huge"} {
		if _, err := parseStreamAttrs(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestRunStreamEndToEnd(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 400)
	out := filepath.Join(dir, "out.csv")
	report := filepath.Join(dir, "report.json")
	ckpt := filepath.Join(dir, "state.ckpt")
	cfg := streamConfig{
		records: records, attrsSpec: "count:sum:int,price:avg",
		rows: 8, cols: 8, bbox: "0,10,0,10",
		threshold: 0.15, schedule: "geometric",
		checkpoint: ckpt, checkpointEvery: 100,
		out: out, reportOut: report,
	}
	if err := runStream(cfg); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := spatialrepart.ReadGridCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 8 || g.Cols != 8 {
		t.Errorf("reduced grid %dx%d", g.Rows, g.Cols)
	}
	rb, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rb), `"accepted": 400`) {
		t.Errorf("report missing accepted count:\n%s", rb)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp checkpoint file left behind")
	}

	// Second run restores the checkpoint: with only a header in the records
	// file the accepted count carries over from the first run.
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("lat,lon,count,price\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	report2 := filepath.Join(dir, "report2.json")
	out2 := filepath.Join(dir, "out2.csv")
	cfg2 := cfg
	cfg2.records, cfg2.reportOut, cfg2.out = empty, report2, out2
	if err := runStream(cfg2); err != nil {
		t.Fatal(err)
	}
	rb2, err := os.ReadFile(report2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rb2), `"accepted": 400`) {
		t.Errorf("restored run lost the accepted count:\n%s", rb2)
	}
	// Identical aggregates serve an identical reduced grid.
	b1, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("restored run wrote a different reduced grid")
	}
}

func TestRunStreamErrors(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 40)
	base := streamConfig{
		records: records, attrsSpec: "count:sum,price:avg",
		rows: 4, cols: 4, bbox: "0,10,0,10", threshold: 0.1, schedule: "geometric",
	}

	cfg := base
	cfg.attrsSpec = ""
	if err := runStream(cfg); err == nil {
		t.Error("want missing attrs error")
	}
	cfg = base
	cfg.bbox = "10,0,0,10" // inverted latitude span
	if err := runStream(cfg); err == nil {
		t.Error("want bounds validation error")
	}
	cfg = base
	cfg.schedule = "bogus"
	if err := runStream(cfg); err == nil {
		t.Error("want schedule error")
	}
	cfg = base
	cfg.records = filepath.Join(dir, "nonexistent.csv")
	if err := runStream(cfg); err == nil {
		t.Error("want open error")
	}
	cfg = base
	cfg.attrsSpec = "count:sum" // arity mismatch vs two-value rows
	if err := runStream(cfg); err == nil {
		t.Error("want record arity error")
	}
	// A corrupt checkpoint must fail the run, not silently start fresh.
	cfg = base
	cfg.checkpoint = filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(cfg.checkpoint, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runStream(cfg); err == nil {
		t.Error("want corrupt checkpoint error")
	}
}
