package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialrepart"
	"spatialrepart/internal/grid"
)

// writeTestRecords writes a raw records CSV: a dense field of points whose
// value steps up across the longitude midline, so the partition splits.
func writeTestRecords(t *testing.T, dir, name string, n int) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("lat,lon,count,price\n")
	for i := 0; i < n; i++ {
		lat := float64(i%20)/2 + 0.25
		lon := float64((i*7)%20)/2 + 0.25
		price := 10.0
		if lon >= 5 {
			price = 90
		}
		fmt.Fprintf(&sb, "%g,%g,1,%g\n", lat, lon, price)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseStreamAttrs(t *testing.T) {
	attrs, err := parseStreamAttrs("count:sum:int, price:avg ,kind:avg:cat")
	if err != nil {
		t.Fatal(err)
	}
	want := []grid.Attribute{
		{Name: "count", Agg: grid.Sum, Integer: true},
		{Name: "price", Agg: grid.Average},
		{Name: "kind", Agg: grid.Average, Categorical: true},
	}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs", len(attrs))
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, attrs[i], want[i])
		}
	}
	for _, bad := range []string{"", "count", "count:median", "count:sum:huge"} {
		if _, err := parseStreamAttrs(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestRunStreamEndToEnd(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 400)
	out := filepath.Join(dir, "out.csv")
	report := filepath.Join(dir, "report.json")
	ckpt := filepath.Join(dir, "state.ckpt")
	cfg := streamConfig{
		records: records, attrsSpec: "count:sum:int,price:avg",
		rows: 8, cols: 8, bbox: "0,10,0,10",
		threshold: 0.15, schedule: "geometric",
		checkpoint: ckpt, checkpointEvery: 100,
		out: out, reportOut: report,
	}
	if err := runStream(cfg); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := spatialrepart.ReadGridCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 8 || g.Cols != 8 {
		t.Errorf("reduced grid %dx%d", g.Rows, g.Cols)
	}
	rb, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rb), `"accepted": 400`) {
		t.Errorf("report missing accepted count:\n%s", rb)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp checkpoint file left behind")
	}

	// Second run restores the checkpoint: with only a header in the records
	// file the accepted count carries over from the first run.
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("lat,lon,count,price\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	report2 := filepath.Join(dir, "report2.json")
	out2 := filepath.Join(dir, "out2.csv")
	cfg2 := cfg
	cfg2.records, cfg2.reportOut, cfg2.out = empty, report2, out2
	if err := runStream(cfg2); err != nil {
		t.Fatal(err)
	}
	rb2, err := os.ReadFile(report2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rb2), `"accepted": 400`) {
		t.Errorf("restored run lost the accepted count:\n%s", rb2)
	}
	// Identical aggregates serve an identical reduced grid.
	b1, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("restored run wrote a different reduced grid")
	}
}

func TestRunStreamErrors(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 40)
	base := streamConfig{
		records: records, attrsSpec: "count:sum,price:avg",
		rows: 4, cols: 4, bbox: "0,10,0,10", threshold: 0.1, schedule: "geometric",
	}

	cfg := base
	cfg.attrsSpec = ""
	if err := runStream(cfg); err == nil {
		t.Error("want missing attrs error")
	}
	cfg = base
	cfg.bbox = "10,0,0,10" // inverted latitude span
	if err := runStream(cfg); err == nil {
		t.Error("want bounds validation error")
	}
	cfg = base
	cfg.schedule = "bogus"
	if err := runStream(cfg); err == nil {
		t.Error("want schedule error")
	}
	cfg = base
	cfg.records = filepath.Join(dir, "nonexistent.csv")
	if err := runStream(cfg); err == nil {
		t.Error("want open error")
	}
	cfg = base
	cfg.attrsSpec = "count:sum" // arity mismatch vs two-value rows
	if err := runStream(cfg); err == nil {
		t.Error("want record arity error")
	}
	// A corrupt checkpoint must fail the run, not silently start fresh.
	cfg = base
	cfg.checkpoint = filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(cfg.checkpoint, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runStream(cfg); err == nil {
		t.Error("want corrupt checkpoint error")
	}
}

func TestRunStreamWALReplay(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 300)
	walDir := filepath.Join(dir, "wal")
	out := filepath.Join(dir, "out.csv")
	cfg := streamConfig{
		records: records, attrsSpec: "count:sum:int,price:avg",
		rows: 8, cols: 8, bbox: "0,10,0,10",
		threshold: 0.15, schedule: "geometric",
		walDir: walDir, walSync: "every=16", walSegmentBytes: 2048,
		out: out,
	}
	if err := runStream(cfg); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >=2 rotated segments, got %v (err %v)", segs, err)
	}

	// No checkpoint was ever taken, so a restart rebuilds the whole state
	// from the WAL alone: an empty feed must still serve the same grid.
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("lat,lon,count,price\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "out2.csv")
	report2 := filepath.Join(dir, "report2.json")
	cfg2 := cfg
	cfg2.records, cfg2.out, cfg2.reportOut = empty, out2, report2
	if err := runStream(cfg2); err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(report2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"accepted": 300`, `"wal_replayed": 300`, `"wal_seq": 300`} {
		if !strings.Contains(string(rb), want) {
			t.Errorf("replayed-run report missing %s:\n%s", want, rb)
		}
	}
	b1, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("WAL-replayed run wrote a different reduced grid")
	}
}

func TestRunStreamWALCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 200)
	walDir := filepath.Join(dir, "wal")
	ckpt := filepath.Join(dir, "state.ckpt")
	cfg := streamConfig{
		records: records, attrsSpec: "count:sum:int,price:avg",
		rows: 8, cols: 8, bbox: "0,10,0,10",
		threshold: 0.15, schedule: "geometric",
		walDir: walDir, checkpoint: ckpt, checkpointEvery: 50,
	}
	if err := runStream(cfg); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint covers every record, so the restart replays
	// nothing and restores everything from the checkpoint.
	report := filepath.Join(dir, "report.json")
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("lat,lon,count,price\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.records, cfg2.reportOut = empty, report
	if err := runStream(cfg2); err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rb), `"accepted": 200`) {
		t.Errorf("restored run lost records:\n%s", rb)
	}
	if strings.Contains(string(rb), `"wal_replayed"`) {
		t.Errorf("checkpoint-covered restart should replay nothing:\n%s", rb)
	}
}

func TestRunStreamWALValidation(t *testing.T) {
	dir := t.TempDir()
	records := writeTestRecords(t, dir, "points.csv", 20)
	base := streamConfig{
		records: records, attrsSpec: "count:sum,price:avg",
		rows: 4, cols: 4, bbox: "0,10,0,10", threshold: 0.1, schedule: "geometric",
	}

	cfg := base
	cfg.walSync = "every=5" // -wal-sync without -wal
	if err := runStream(cfg); err == nil {
		t.Error("want -wal-sync-without--wal error")
	}
	cfg = base
	cfg.walSegmentBytes = 1 << 20 // -wal-segment-bytes without -wal
	if err := runStream(cfg); err == nil {
		t.Error("want -wal-segment-bytes-without--wal error")
	}
	for _, bad := range []string{"sometimes", "every=0", "every=x", "interval=0", "interval=soon"} {
		cfg = base
		cfg.walDir = filepath.Join(dir, "wal")
		cfg.walSync = bad
		if err := runStream(cfg); err == nil {
			t.Errorf("want -wal-sync %q parse error", bad)
		}
	}

	// A WAL directory is stamped with grid geometry + shard spec: pointing a
	// differently-configured run (here: a shard worker) at the same
	// directory must fail fast instead of replaying foreign records.
	cfg = base
	cfg.walDir = filepath.Join(dir, "stamped")
	if err := runStream(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.shard = "0/2"
	if err := runStream(cfg); err == nil || !strings.Contains(err.Error(), "stamp") {
		t.Errorf("want stamp mismatch error for cross-wired shard WAL dir, got %v", err)
	}
}
