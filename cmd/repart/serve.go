package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spatialrepart"
	"spatialrepart/internal/obs"
	"spatialrepart/internal/server"
	"spatialrepart/internal/stream"
)

// defaultDrainTimeout bounds the graceful drain when -drain-timeout is unset.
const defaultDrainTimeout = 10 * time.Second

// serveView runs the load-shedding HTTP front end (internal/server) over the
// streaming repartitioner: bind addr, report the bound address through ready,
// then block until stop fires and drain gracefully within drainTimeout.
// Signal plumbing lives in the caller so tests can drive stop directly.
func serveView(src *stream.Repartitioner, addr string, drainTimeout time.Duration,
	obsv *spatialrepart.Observer, logger *slog.Logger, ready func(addr string), stop <-chan struct{}) error {
	if drainTimeout <= 0 {
		drainTimeout = defaultDrainTimeout
	}
	srv, err := server.New(server.Config{Source: src, Obs: obsv, Logger: logger})
	if err != nil {
		return err
	}
	// Runtime telemetry (heap, GC pauses, goroutines) samples for as long as
	// the serving loop runs; with a nil observer the sampler is inert.
	sampler := obs.StartRuntimeSampler(obsv, obs.DefRuntimeSampleInterval, nil)
	defer sampler.Stop()
	bound, err := srv.Serve(addr)
	if err != nil {
		return err
	}
	logger.Info("serving repartitioned view", "addr", bound, "drain_timeout", drainTimeout)
	if ready != nil {
		ready(bound)
	}
	<-stop

	logger.Info("drain started", "timeout", drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drain complete")
	return nil
}

// signalChannel returns a channel closed on the first SIGTERM or SIGINT —
// the serve mode's shutdown trigger.
func signalChannel() <-chan struct{} {
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigs
		close(stop)
	}()
	return stop
}
