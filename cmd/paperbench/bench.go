package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"spatialrepart/internal/core"
	"spatialrepart/internal/datagen"
	"spatialrepart/internal/experiments"
	"spatialrepart/internal/obs"
)

// benchRegistry backs the -metrics-addr endpoint and every benchmark run, so
// live metrics are visible while the benchmark executes.
var benchRegistry = obs.NewRegistry()

// benchRows/benchCols fix the benchmark grid so BENCH_repartition.json files
// from different machines measure the same work.
const (
	benchRows = 48
	benchCols = 48
)

// benchDatasets are the synthetic grids the benchmark sweeps: one
// multivariate and one univariate generator.
var benchDatasets = []string{"taxi-multi", "earnings-uni"}

// benchEntry is one benchmark measurement: a dataset × threshold × workers
// cell with its wall time and the full instrumented run report.
type benchEntry struct {
	Dataset string          `json:"dataset"`
	Theta   float64         `json:"theta"`
	Workers int             `json:"workers"` // requested; 0 = all cores
	WallNS  int64           `json:"wall_ns"`
	Report  *core.RunReport `json:"report"`
}

// benchFile is the schema of BENCH_repartition.json.
type benchFile struct {
	Version    string       `json:"version"`
	Timestamp  string       `json:"timestamp"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Rows       int          `json:"rows"`
	Cols       int          `json:"cols"`
	Seed       int64        `json:"seed"`
	Entries    []benchEntry `json:"entries"`
}

// benchmark runs the instrumented repartition benchmark: every bench dataset
// at a fixed grid size, sequential and all-cores, geometric schedule.
func benchmark(cfg experiments.Config) (*benchFile, error) {
	bf := &benchFile{
		Version:    obs.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       benchRows,
		Cols:       benchCols,
		Seed:       cfg.Seed,
	}
	theta := 0.1
	for _, name := range benchDatasets {
		d := datagen.ByName(name, cfg.Seed, benchRows, benchCols)
		if d == nil {
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
		for _, workers := range []int{1, 0} {
			start := time.Now()
			_, report, err := core.RepartitionWithReport(d.Grid, core.Options{
				Threshold: theta,
				Schedule:  core.ScheduleGeometric,
				Workers:   workers,
				Obs:       obs.WithRegistry(benchRegistry),
			})
			if err != nil {
				return nil, fmt.Errorf("bench %s workers=%d: %w", name, workers, err)
			}
			bf.Entries = append(bf.Entries, benchEntry{
				Dataset: name,
				Theta:   theta,
				Workers: workers,
				WallNS:  time.Since(start).Nanoseconds(),
				Report:  report,
			})
		}
	}
	return bf, nil
}

// runBench executes the benchmark and writes its JSON report to path.
func runBench(path string, cfg experiments.Config) error {
	bf, err := benchmark(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(bf)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
