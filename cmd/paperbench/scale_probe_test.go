package main

import (
	"testing"
	"time"

	"spatialrepart"
	"spatialrepart/internal/datagen"
)

// TestPaperScaleProbe verifies the framework handles the paper's ≈100k-cell
// grids in reasonable time (skipped in -short runs).
func TestPaperScaleProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := datagen.TaxiTripsUni(42, 315, 318)
	start := time.Now()
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.05, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	t.Logf("100k-cell repartition: %d -> %d groups (IFL %.4f) in %v",
		ds.Grid.ValidCount(), rp.ValidGroups(), rp.IFL, elapsed)
	if rp.IFL > 0.05 {
		t.Errorf("IFL = %v", rp.IFL)
	}
	if elapsed > 2*time.Minute {
		t.Errorf("paper-scale repartition took %v, want under 2 minutes", elapsed)
	}
}
