package main

import (
	"os"
	"path/filepath"
	"testing"

	"spatialrepart/internal/experiments"
)

func tinyConfig() experiments.Config {
	return experiments.Config{
		Seed:         3,
		Sizes:        []experiments.GridSize{{Name: "t", Rows: 10, Cols: 10}},
		ModelSize:    experiments.GridSize{Name: "t", Rows: 12, Cols: 12},
		Thresholds:   []float64{0.1},
		TestFraction: 0.2,
		Classes:      3,
		ClusterK:     3,
		SVRMaxTrain:  200,
		Repeats:      1,
	}
}

func TestRunFastExperiments(t *testing.T) {
	cfg := tinyConfig()
	for _, exp := range []string{"fig5", "fig6", "table5", "ablation"} {
		if err := run(exp, cfg); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run("table4", tinyConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", tinyConfig()); err == nil {
		t.Error("want unknown-experiment error")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	csvOut = dir
	defer func() { csvOut = "" }()
	if err := run("fig5", tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if err := run("table5", tinyConfig()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5_fig6.csv", "table5.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
