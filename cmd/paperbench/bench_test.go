package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"spatialrepart/internal/experiments"
)

func TestBenchReportPopulated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_repartition.json")
	if err := runBench(path, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(b, &bf); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if bf.Version == "" || bf.GOMAXPROCS <= 0 || bf.Timestamp == "" {
		t.Errorf("bench header not populated: %+v", bf)
	}
	want := len(benchDatasets) * 2 // workers 1 and all-cores
	if len(bf.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(bf.Entries), want)
	}
	for _, e := range bf.Entries {
		if e.WallNS <= 0 || e.Report == nil {
			t.Fatalf("entry %s/w=%d not populated", e.Dataset, e.Workers)
		}
		if e.Report.TotalNS <= 0 || e.Report.Evaluations == 0 {
			t.Errorf("entry %s/w=%d report empty: %+v", e.Dataset, e.Workers, e.Report)
		}
		for _, phase := range []string{"varfield.build", "rung.eval", "rung.extract", "rung.allocate", "rung.loss"} {
			if e.Report.Phases[phase].Count == 0 {
				t.Errorf("entry %s/w=%d missing phase %s", e.Dataset, e.Workers, phase)
			}
		}
	}
	// Sequential and all-cores runs of the same dataset find the same answer.
	for _, name := range benchDatasets {
		var seq, par *benchEntry
		for i := range bf.Entries {
			e := &bf.Entries[i]
			if e.Dataset != name {
				continue
			}
			if e.Workers == 1 {
				seq = e
			} else {
				par = e
			}
		}
		if seq == nil || par == nil {
			t.Fatalf("dataset %s missing a workers variant", name)
		}
		if seq.Report.IFL != par.Report.IFL || seq.Report.Groups != par.Report.Groups ||
			seq.Report.Iterations != par.Report.Iterations {
			t.Errorf("dataset %s: sequential and parallel runs disagree", name)
		}
	}
}

func TestExperimentsReportCollector(t *testing.T) {
	cfg := tinyConfig()
	cfg.Collector = &experiments.Collector{}
	if err := run("fig5", cfg); err != nil {
		t.Fatal(err)
	}
	s := cfg.Collector.Summary(cfg)
	if len(s.Runs) == 0 {
		t.Fatal("collector recorded no runs")
	}
	if s.TotalRepartitionNS <= 0 || s.TotalEvaluations < s.TotalIterations || s.TotalIterations == 0 {
		t.Errorf("summary aggregates wrong: %+v", s)
	}
	for _, r := range s.Runs {
		if r.Report == nil || len(r.Report.Phases) == 0 {
			t.Errorf("run %s/θ=%v has no report phases", r.Dataset, r.Theta)
		}
	}
	path := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Collector.WriteJSON(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed experiments.Summary
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatalf("summary JSON does not parse: %v", err)
	}
	if len(parsed.Runs) != len(s.Runs) {
		t.Errorf("round-trip lost runs: %d vs %d", len(parsed.Runs), len(s.Runs))
	}
}
