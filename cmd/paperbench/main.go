// Command paperbench regenerates the paper's tables and figures from the
// synthetic dataset suite. Each experiment prints the same rows/series the
// paper reports; absolute numbers differ (different hardware, Go instead of
// Python, synthetic data), but the shapes — who wins, by what rough factor,
// where the thresholds bite — are the reproduction target.
//
// Usage:
//
//	paperbench -exp fig5        # cell reduction (also covers fig6 timing)
//	paperbench -exp fig7        # regression/kriging training time+memory (fig8)
//	paperbench -exp fig9        # clustering/classification time+memory (fig10)
//	paperbench -exp table2      # regression & kriging prediction errors
//	paperbench -exp table3      # classification weighted F1
//	paperbench -exp table4      # clustering correctness
//	paperbench -exp table5      # homogeneous re-partitioning IFL
//	paperbench -exp ablation    # exact vs geometric schedule
//	paperbench -exp all
//
// Scale: set REPRO_SCALE=paper for the paper's grid sizes (slow) or
// REPRO_SCALE=quick for a smoke test; the default is laptop-scale.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"spatialrepart/internal/experiments"
	"spatialrepart/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig5|fig6|fig7|fig8|fig9|fig10|table2|table3|table4|table5|ablation|all")
	seed := flag.Int64("seed", 0, "override the dataset seed (0 keeps the default)")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	workers := flag.Int("workers", 0, "goroutines per re-partitioning call (0 = all cores, 1 = sequential; results are identical either way)")
	reportOut := flag.String("report", "", "write a JSON summary of every re-partitioning the experiments performed")
	benchOut := flag.String("bench", "", "run only the instrumented repartition benchmark and write its JSON to this path (e.g. BENCH_repartition.json)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("paperbench", obs.Version())
		return
	}

	cfg := experiments.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	logger.Info("paperbench starting", "version", obs.Version(), "exp", *exp,
		"seed", cfg.Seed, "workers", cfg.Workers, "scale", os.Getenv("REPRO_SCALE"),
		"model_size", cfg.ModelSize.Name, "thresholds", fmt.Sprint(cfg.Thresholds))

	if *metricsAddr != "" {
		_, addr, err := obs.Serve(*metricsAddr, benchRegistry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		logger.Info("metrics endpoint up", "addr", addr)
	}
	if *benchOut != "" {
		if err := runBench(*benchOut, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		logger.Info("benchmark report written", "path", *benchOut)
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}
	if *reportOut != "" {
		cfg.Collector = &experiments.Collector{}
	}
	if err := run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
	if *reportOut != "" {
		f, err := os.Create(*reportOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		err = cfg.Collector.WriteJSON(f, cfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		logger.Info("run report written", "path", *reportOut)
	}
}

// csvOut, when non-empty, is the directory experiment CSVs are written to.
var csvOut string

// writeCSV writes one experiment's CSV file when -csv is set.
func writeCSV(name string, write func(w *os.File) error) error {
	if csvOut == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvOut, name))
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func run(exp string, cfg experiments.Config) error {
	runners := map[string]func(experiments.Config) error{
		"fig5": runCellReduction, "fig6": runCellReduction,
		"fig7": runRegressionCosts, "fig8": runRegressionCosts,
		"fig9": runClusteringCosts, "fig10": runClusteringCosts,
		"table2":   runTable2,
		"table3":   runTable3,
		"table4":   runTable4,
		"table5":   runTable5,
		"ablation": runAblation,
	}
	if exp == "all" {
		for _, name := range []string{"fig5", "fig7", "fig9", "table2", "table3", "table4", "table5", "ablation"} {
			fmt.Printf("\n===== %s =====\n", name)
			if err := runners[name](cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(cfg)
}

func runCellReduction(cfg experiments.Config) error {
	rows, err := experiments.CellReduction(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figs. 5 & 6 — spatial cell reduction and re-partitioning time")
	if err := experiments.PrintCellReduction(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("fig5_fig6.csv", func(w *os.File) error {
		return experiments.WriteCellReductionCSV(w, rows)
	})
}

func runRegressionCosts(cfg experiments.Config) error {
	rows, err := experiments.RegressionTrainingCosts(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figs. 7 & 8 — regression/kriging training time and memory")
	if err := experiments.PrintTrainCosts(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("fig7_fig8.csv", func(w *os.File) error {
		return experiments.WriteTrainCostsCSV(w, rows)
	})
}

func runClusteringCosts(cfg experiments.Config) error {
	rows, err := experiments.ClusteringClassificationCosts(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figs. 9 & 10 — clustering/classification training time and memory")
	if err := experiments.PrintTrainCosts(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("fig9_fig10.csv", func(w *os.File) error {
		return experiments.WriteTrainCostsCSV(w, rows)
	})
}

func runTable2(cfg experiments.Config) error {
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table II — prediction errors of spatial regression and kriging")
	if err := experiments.PrintTable2(os.Stdout, rows); err != nil {
		return err
	}
	fmt.Println("\nTable II summary — re-partitioning vs original and vs baselines (RMSE)")
	if err := experiments.PrintTable2Summary(os.Stdout, experiments.SummarizeTable2(rows)); err != nil {
		return err
	}
	return writeCSV("table2.csv", func(w *os.File) error {
		return experiments.WriteTable2CSV(w, rows)
	})
}

func runTable3(cfg experiments.Config) error {
	rows, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table III — weighted F1 of classification models")
	if err := experiments.PrintTable3(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("table3.csv", func(w *os.File) error {
		return experiments.WriteTable3CSV(w, rows)
	})
}

func runTable4(cfg experiments.Config) error {
	rows, err := experiments.Table4(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table IV — clustering correctness (%)")
	if err := experiments.PrintTable4(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("table4.csv", func(w *os.File) error {
		return experiments.WriteTable4CSV(w, rows)
	})
}

func runTable5(cfg experiments.Config) error {
	rows, err := experiments.Table5(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table V — information loss of homogeneous re-partitioning (merge factor 2)")
	if err := experiments.PrintTable5(os.Stdout, rows); err != nil {
		return err
	}
	return writeCSV("table5.csv", func(w *os.File) error {
		return experiments.WriteTable5CSV(w, rows)
	})
}

func runAblation(cfg experiments.Config) error {
	rows, err := experiments.ScheduleAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Ablation — exact vs geometric variation schedule")
	if err := experiments.PrintAblation(os.Stdout, rows); err != nil {
		return err
	}
	alloc, err := experiments.AllocationAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nAblation — Algorithm 2 allocation: best-of-mean-and-mode vs mean-only")
	if err := experiments.PrintAllocationAblation(os.Stdout, alloc); err != nil {
		return err
	}
	extr, err := experiments.ExtractorAblation(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\nAblation — extractor: greedy rectangle growing vs quadtree splitting")
	if err := experiments.PrintExtractorAblation(os.Stdout, extr); err != nil {
		return err
	}
	return nil
}
