package main

import (
	"os"
	"path/filepath"
	"testing"

	"spatialrepart"
)

func TestRunWritesParseableGrid(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.csv")
	if err := run("vehicles-uni", 12, 12, 3, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := spatialrepart.ReadGridCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 12 || g.Cols != 12 {
		t.Errorf("grid %dx%d, want 12x12", g.Rows, g.Cols)
	}
	if g.ValidCount() == 0 {
		t.Error("empty grid")
	}
}

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, n := range names {
		if err := run(n, 8, 8, 1, filepath.Join(dir, n+".csv")); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 8, 8, 1, ""); err == nil {
		t.Error("want unknown-dataset error")
	}
}
