// Command datagen emits the synthetic spatial grid datasets used throughout
// this repository (the stand-ins for the paper's NYC taxi, King County home
// sales, Chicago abandoned vehicles, and NYC earnings datasets) as CSV files
// readable by cmd/repart and the spatialrepart library.
//
// Usage:
//
//	datagen -dataset taxi-multi -rows 100 -cols 100 -seed 42 -out taxi.csv
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"spatialrepart/internal/datagen"
	"spatialrepart/internal/obs"
)

var names = []string{"taxi-multi", "homesales", "earnings-multi", "taxi-uni", "vehicles-uni", "earnings-uni", "landuse"}

func main() {
	name := flag.String("dataset", "taxi-uni", "dataset to generate")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid columns")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "", "output CSV path (default stdout)")
	list := flag.Bool("list", false, "list available datasets and exit")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		fmt.Println("datagen", obs.Version())
		return
	}
	if *list {
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	slog.New(slog.NewTextHandler(os.Stderr, nil)).Info("datagen starting",
		"version", obs.Version(), "dataset", *name, "rows", *rows, "cols", *cols, "seed", *seed)
	if err := run(*name, *rows, *cols, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, rows, cols int, seed int64, out string) error {
	d := datagen.ByName(name, seed, rows, cols)
	if d == nil {
		return fmt.Errorf("unknown dataset %q (use -list)", name)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		werr := d.Grid.WriteCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	} else if err := d.Grid.WriteCSV(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %s (target attribute %d, bounds %+v)\n", d.Name, d.Grid, d.TargetAttr, d.Bounds)
	return nil
}
