// Package spatialrepart is the public facade of the ML-aware spatial data
// re-partitioning framework (Chowdhury, Meduri, Sarwat — ICDE 2022
// reproduction). It reduces the number of cells in a spatial grid dataset by
// merging adjacent, similar cells into rectangular cell-groups while keeping
// the information loss under a user-specified threshold, then prepares the
// coarser dataset for spatial ML training (feature vectors, adjacency lists,
// and the mapping back to input cells).
//
// The minimal pipeline:
//
//	g := spatialrepart.NewGrid(rows, cols, attrs)   // or GridFromRecords / ReadGridCSV
//	// ... fill cells ...
//	rp, err := spatialrepart.Repartition(g, spatialrepart.Options{Threshold: 0.05})
//	data, err := rp.TrainingData(targetAttr, bounds) // instances, adjacency, centroids
//	// ... train any model in internal/{regress,svm,forest,boost,knn,kriging} ...
//	cellValues, valid, err := rp.DistributeToCells(groupPredictions, attr)
package spatialrepart

import (
	"context"
	"io"

	"spatialrepart/internal/core"
	"spatialrepart/internal/grid"
	"spatialrepart/internal/obs"
	"spatialrepart/internal/weights"
)

// Grid is an m×n spatial grid of feature-vector cells (paper §II).
type Grid = grid.Grid

// Attribute describes one feature-vector dimension of a grid.
type Attribute = grid.Attribute

// AggType selects how records (and merged cells) aggregate.
type AggType = grid.AggType

// Aggregation types for Attribute.Agg.
const (
	Sum     = grid.Sum
	Average = grid.Average
)

// Bounds is a grid's geographic extent.
type Bounds = grid.Bounds

// Record is one raw spatial data record (a point plus attribute values).
type Record = grid.Record

// Options configures Repartition.
type Options = core.Options

// Schedule selects the re-partitioning iteration schedule.
type Schedule = core.Schedule

// Iteration schedules for Options.Schedule.
const (
	ScheduleExact     = core.ScheduleExact
	ScheduleGeometric = core.ScheduleGeometric
)

// Repartitioned is the framework's output: rectangular cell-groups with
// allocated feature vectors, the information loss achieved, adjacency
// construction, and the group→cell reconstruction of §III-C.
type Repartitioned = core.Repartitioned

// Dataset is the train-ready form of a (re-partitioned) grid (§III-B).
type Dataset = core.Dataset

// CellGroup is one rectangular group of adjacent cells.
type CellGroup = core.CellGroup

// Partition maps a grid onto its cell-groups.
type Partition = core.Partition

// MergeMode selects the axes the homogeneous (naïve) variant merges.
type MergeMode = core.MergeMode

// Merge modes for Homogeneous.
const (
	MergeRows = core.MergeRows
	MergeCols = core.MergeCols
	MergeBoth = core.MergeBoth
)

// W is a binary-contiguity spatial weights object (adjacency lists).
type W = weights.W

// Observer collects metrics and per-phase span timings from an instrumented
// run (DESIGN.md §3.14). Attach one via Options.Obs; a nil Observer costs a
// single branch per hook and never changes results.
type Observer = obs.Observer

// RunReport is the machine-readable summary RepartitionWithReport produces:
// per-phase timings, the IFL trajectory, ladder statistics, and worker
// utilization.
type RunReport = core.RunReport

// NewGrid allocates an all-null rows×cols grid with the given attributes.
func NewGrid(rows, cols int, attrs []Attribute) *Grid {
	return grid.New(rows, cols, attrs)
}

// GridFromRecords aggregates raw point records into a grid (§II), applying
// each attribute's aggregation type. It returns the grid and the number of
// records dropped for falling outside the bounds.
func GridFromRecords(records []Record, bounds Bounds, rows, cols int, attrs []Attribute) (*Grid, int, error) {
	return grid.FromRecords(records, bounds, rows, cols, attrs)
}

// ReadGridCSV parses a grid from the CSV form produced by Grid.WriteCSV.
func ReadGridCSV(r io.Reader) (*Grid, error) {
	return grid.ReadCSV(r)
}

// Repartition runs the ML-aware re-partitioning framework (§III-A): it
// returns the coarsest re-partitioned dataset whose information loss stays
// within Options.Threshold.
func Repartition(g *Grid, opts Options) (*Repartitioned, error) {
	return core.Repartition(g, opts)
}

// ErrCanceled is returned (wrapped around the context's own error) when a
// context-aware run is canceled or exceeds its deadline. Test with
// errors.Is(err, spatialrepart.ErrCanceled).
var ErrCanceled = core.ErrCanceled

// RepartitionCtx is Repartition observing ctx: cancellation and deadlines are
// honored at rung boundaries and between parallel evaluation batches, so a
// long climb stops within one rung of the signal. When ctx is never canceled
// the result is byte-identical to Repartition's.
func RepartitionCtx(ctx context.Context, g *Grid, opts Options) (*Repartitioned, error) {
	return core.RepartitionCtx(ctx, g, opts)
}

// NewObserver returns an enabled Observer with a fresh metrics registry.
func NewObserver() *Observer { return obs.New() }

// RepartitionWithReport is Repartition plus a RunReport describing what the
// search did; the returned dataset is byte-identical to Repartition's.
func RepartitionWithReport(g *Grid, opts Options) (*Repartitioned, *RunReport, error) {
	return core.RepartitionWithReport(g, opts)
}

// Homogeneous runs the naïve homogeneous re-partitioning variant (§III-D)
// at merge factor k.
func Homogeneous(g *Grid, k int, mode MergeMode) (*Repartitioned, error) {
	return core.Homogeneous(g, k, mode)
}

// GridTrainingData prepares the ORIGINAL (unreduced) grid for training, one
// instance per valid cell — the comparison baseline of the paper's
// experiments.
func GridTrainingData(g *Grid, targetAttr int, bounds Bounds) (*Dataset, error) {
	return core.GridTrainingData(g, targetAttr, bounds)
}

// NewWeights wraps an adjacency list (for example Dataset.Neighbors) as a
// spatial weights object exposing Moran's I, Geary's C, and spatial lags.
func NewWeights(neighbors [][]int) *W {
	return weights.New(neighbors)
}

// ReadRepartitionJSON loads a re-partitioned dataset persisted with
// Repartitioned.WriteJSON — the partition rectangles, group features and
// metadata, ready for adjacency construction, training-data preparation and
// the §III-C reconstruction in a different process.
func ReadRepartitionJSON(r io.Reader) (*Repartitioned, error) {
	return core.ReadRepartitionJSON(r)
}
