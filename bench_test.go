package spatialrepart_test

// One benchmark per paper table/figure (plus core micro-benchmarks). Each
// experiment benchmark executes the full regeneration pipeline at a reduced
// grid scale so `go test -bench=.` completes in minutes; run cmd/paperbench
// (optionally with REPRO_SCALE=paper) for the full sweeps.

import (
	"testing"

	"spatialrepart"
	"spatialrepart/internal/datagen"
	"spatialrepart/internal/experiments"
)

// benchConfig is the reduced-scale configuration the experiment benchmarks
// share.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:         42,
		Sizes:        []experiments.GridSize{{Name: "bench", Rows: 20, Cols: 20}},
		ModelSize:    experiments.GridSize{Name: "bench", Rows: 20, Cols: 20},
		Thresholds:   []float64{0.05, 0.1, 0.15},
		TestFraction: 0.2,
		Classes:      5,
		ClusterK:     6,
		SVRMaxTrain:  500,
		Repeats:      1,
	}
}

// BenchmarkFig5CellReduction regenerates Fig. 5 (spatial cell reduction per
// dataset, size, and IFL threshold).
func BenchmarkFig5CellReduction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CellReduction(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ReductionTime regenerates Fig. 6 (re-partitioning time); the
// same sweep as Fig. 5 — the row set carries both measurements.
func BenchmarkFig6ReductionTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CellReduction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var total int64
		for _, r := range rows {
			total += int64(r.ReduceTime)
		}
		_ = total
	}
}

// BenchmarkFig7TrainingTime regenerates Figs. 7-8 (regression/kriging
// training time and memory, original vs re-partitioned).
func BenchmarkFig7TrainingTime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RegressionTrainingCosts(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ClusteringClassification regenerates Figs. 9-10 (clustering
// and classification training time and memory).
func BenchmarkFig9ClusteringClassification(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ClusteringClassificationCosts(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2PredictionErrors regenerates Table II (prediction errors of
// five regression models and kriging across all methods and thresholds).
func BenchmarkTable2PredictionErrors(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ClassificationF1 regenerates Table III (weighted F1).
func BenchmarkTable3ClassificationF1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4ClusteringCorrectness regenerates Table IV.
func BenchmarkTable4ClusteringCorrectness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5HomogeneousIFL regenerates Table V.
func BenchmarkTable5HomogeneousIFL(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSchedules compares the exact and geometric iteration
// schedules (DESIGN.md §3.2).
func BenchmarkAblationSchedules(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ScheduleAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core micro-benchmarks -------------------------------------------------

// BenchmarkRepartitionExact measures one exact-schedule re-partitioning of a
// 48x48 univariate grid at θ = 0.1.
func BenchmarkRepartitionExact(b *testing.B) {
	ds := datagen.TaxiTripsUni(1, 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
			Threshold: 0.1, Schedule: spatialrepart.ScheduleExact,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionGeometric is the geometric-schedule counterpart.
func BenchmarkRepartitionGeometric(b *testing.B) {
	ds := datagen.TaxiTripsUni(1, 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
			Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionMultivariate measures the multivariate path (7
// attributes, the home-sales schema).
func BenchmarkRepartitionMultivariate(b *testing.B) {
	ds := datagen.HomeSales(1, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
			Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionMultivariateSequential pins Workers=1. The default
// (BenchmarkRepartitionMultivariate, Workers unset = all cores) evaluates
// speculative rung batches concurrently; this is the single-core baseline —
// same grid, same θ, byte-identical result. The delta between the two is the
// speedup of the parallel rung evaluation.
func BenchmarkRepartitionMultivariateSequential(b *testing.B) {
	ds := datagen.HomeSales(1, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
			Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdjacencyList measures Algorithm 3 on a re-partitioned grid.
func BenchmarkAdjacencyList(b *testing.B) {
	ds := datagen.TaxiTripsUni(1, 48, 48)
	rp, err := spatialrepart.Repartition(ds.Grid, spatialrepart.Options{
		Threshold: 0.1, Schedule: spatialrepart.ScheduleGeometric,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rp.Partition.AdjacencyList()
	}
}

// BenchmarkHomogeneous measures the §III-D naïve variant.
func BenchmarkHomogeneous(b *testing.B) {
	ds := datagen.TaxiTripsUni(1, 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spatialrepart.Homogeneous(ds.Grid, 2, spatialrepart.MergeBoth); err != nil {
			b.Fatal(err)
		}
	}
}
