module spatialrepart

go 1.22
